// Direct unit tests for the candidate store (lazy max-heap) and the
// related-leafset dictionary (rdict) used by CSPM-Partial, plus model
// serialization round-trips.
#include "cspm/candidates.h"

#include <gtest/gtest.h>

#include "cspm/miner.h"
#include "cspm/scoring.h"
#include "cspm/serialization.h"
#include "testing_util.h"

namespace cspm::core {
namespace {

TEST(CandidateStoreTest, PopsInGainOrder) {
  CandidateStore store;
  store.Set(LeafsetId(1), LeafsetId(2), 5.0);
  store.Set(LeafsetId(3), LeafsetId(4), 9.0);
  store.Set(LeafsetId(5), LeafsetId(6), 1.0);
  LeafsetId x{};
  LeafsetId y{};
  double gain = 0;
  ASSERT_TRUE(store.PopBest(&x, &y, &gain));
  EXPECT_EQ(std::min(x, y), LeafsetId(3));
  EXPECT_EQ(std::max(x, y), LeafsetId(4));
  EXPECT_DOUBLE_EQ(gain, 9.0);
  ASSERT_TRUE(store.PopBest(&x, &y, &gain));
  EXPECT_DOUBLE_EQ(gain, 5.0);
  ASSERT_TRUE(store.PopBest(&x, &y, &gain));
  EXPECT_DOUBLE_EQ(gain, 1.0);
  EXPECT_FALSE(store.PopBest(&x, &y, &gain));
}

TEST(CandidateStoreTest, PairKeyIsUnordered) {
  CandidateStore store;
  store.Set(LeafsetId(7), LeafsetId(3), 2.0);
  store.Set(LeafsetId(3), LeafsetId(7), 4.0);  // overwrites the same pair
  EXPECT_EQ(store.size(), 1u);
  double gain = 0;
  ASSERT_TRUE(store.PeekBest(&gain));
  EXPECT_DOUBLE_EQ(gain, 4.0);
}

TEST(CandidateStoreTest, UpdateInvalidatesStaleHeapEntries) {
  CandidateStore store;
  store.Set(LeafsetId(1), LeafsetId(2), 10.0);
  store.Set(LeafsetId(1), LeafsetId(2), 3.0);  // downgrade
  store.Set(LeafsetId(4), LeafsetId(5), 6.0);
  LeafsetId x{};
  LeafsetId y{};
  double gain = 0;
  ASSERT_TRUE(store.PopBest(&x, &y, &gain));
  EXPECT_DOUBLE_EQ(gain, 6.0);  // 10.0 entry is stale, skipped
  ASSERT_TRUE(store.PopBest(&x, &y, &gain));
  EXPECT_DOUBLE_EQ(gain, 3.0);
  EXPECT_TRUE(store.empty());
}

TEST(CandidateStoreTest, EraseRemovesPair) {
  CandidateStore store;
  store.Set(LeafsetId(1), LeafsetId(2), 10.0);
  store.Erase(LeafsetId(2), LeafsetId(1));  // reversed order still matches
  EXPECT_TRUE(store.empty());
  double gain = 0;
  EXPECT_FALSE(store.PeekBest(&gain));
}

TEST(CandidateStoreTest, PeekDoesNotConsume) {
  CandidateStore store;
  store.Set(LeafsetId(1), LeafsetId(2), 10.0);
  double gain = 0;
  ASSERT_TRUE(store.PeekBest(&gain));
  EXPECT_DOUBLE_EQ(gain, 10.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(RelatedDictTest, LinkAndIntersect) {
  RelatedDict rdict;
  rdict.Link(LeafsetId(1), LeafsetId(2));
  rdict.Link(LeafsetId(1), LeafsetId(3));
  rdict.Link(LeafsetId(2), LeafsetId(3));
  rdict.Link(LeafsetId(2), LeafsetId(4));
  // related(1) = {2,3}; related(2) = {1,3,4}; intersection = {3}.
  auto inter = rdict.Intersection(LeafsetId(1), LeafsetId(2));
  ASSERT_EQ(inter.size(), 1u);
  EXPECT_EQ(inter[0], LeafsetId(3));
}

TEST(RelatedDictTest, UnlinkIsSymmetric) {
  RelatedDict rdict;
  rdict.Link(LeafsetId(1), LeafsetId(2));
  rdict.Unlink(LeafsetId(2), LeafsetId(1));
  EXPECT_TRUE(rdict.RelatedTo(LeafsetId(1)).empty());
  EXPECT_TRUE(rdict.RelatedTo(LeafsetId(2)).empty());
  EXPECT_TRUE(rdict.empty());
}

TEST(RelatedDictTest, RemoveLeafsetReportsFormerRelations) {
  RelatedDict rdict;
  rdict.Link(LeafsetId(1), LeafsetId(2));
  rdict.Link(LeafsetId(1), LeafsetId(3));
  rdict.Link(LeafsetId(2), LeafsetId(3));
  std::vector<LeafsetId> former;
  rdict.RemoveLeafset(LeafsetId(1), &former);
  EXPECT_EQ(former, (std::vector<LeafsetId>{LeafsetId(2), LeafsetId(3)}));
  EXPECT_FALSE(rdict.Contains(LeafsetId(1)));
  EXPECT_EQ(rdict.RelatedTo(LeafsetId(2)).count(LeafsetId(1)), 0u);
  EXPECT_EQ(rdict.RelatedTo(LeafsetId(2)).count(LeafsetId(3)), 1u);
}

TEST(RelatedDictTest, RemoveUnknownIsNoOp) {
  RelatedDict rdict;
  std::vector<LeafsetId> former = {LeafsetId(99)};
  rdict.RemoveLeafset(LeafsetId(42), &former);
  EXPECT_TRUE(former.empty());
}

TEST(SerializationTest, RoundTripPreservesModel) {
  auto g = cspm::testing::PaperExampleGraph();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  std::string text = ModelToText(model, g.dict());
  auto loaded_or = ModelFromText(text, g.dict());
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const CspmModel& loaded = *loaded_or;
  ASSERT_EQ(loaded.astars.size(), model.astars.size());
  for (size_t i = 0; i < model.astars.size(); ++i) {
    EXPECT_EQ(loaded.astars[i].core_values, model.astars[i].core_values);
    EXPECT_EQ(loaded.astars[i].leaf_values, model.astars[i].leaf_values);
    EXPECT_EQ(loaded.astars[i].frequency, model.astars[i].frequency);
    EXPECT_NEAR(loaded.astars[i].code_length_bits,
                model.astars[i].code_length_bits, 1e-6);
  }
  EXPECT_EQ(loaded.stats.iterations, model.stats.iterations);
  EXPECT_NEAR(loaded.stats.final_dl_bits, model.stats.final_dl_bits, 1e-3);
}

TEST(SerializationTest, FileRoundTrip) {
  auto g = cspm::testing::PaperExampleGraph();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  const std::string path = ::testing::TempDir() + "/cspm_model_test.txt";
  ASSERT_TRUE(SaveModelToFile(model, g.dict(), path).ok());
  auto loaded = LoadModelFromFile(path, g.dict());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->astars.size(), model.astars.size());
}

TEST(SerializationTest, UnknownAttributeRejected) {
  auto g = cspm::testing::PaperExampleGraph();
  auto bad = ModelFromText(
      "astar 1.0 1 1 1 | doesnotexist | a\n", g.dict());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(SerializationTest, MalformedRecordsRejected) {
  auto g = cspm::testing::PaperExampleGraph();
  EXPECT_FALSE(ModelFromText("bogus 1 2\n", g.dict()).ok());
  EXPECT_FALSE(ModelFromText("stats 1.0\n", g.dict()).ok());
  EXPECT_FALSE(ModelFromText("astar 1.0 1 1 1 a b\n", g.dict()).ok());
  EXPECT_FALSE(ModelFromText("astar 1.0 1 1 1 | | a\n", g.dict()).ok());
}

TEST(SerializationTest, LoadedModelDrivesScoring) {
  // The round-tripped model must work in the Algorithm 5 scoring path.
  auto g = cspm::testing::PaperExampleGraph();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  auto loaded = ModelFromText(ModelToText(model, g.dict()), g.dict()).value();
  auto s1 = ScoreAttributes(g, model, VertexId(0));
  auto s2 = ScoreAttributes(g, loaded, VertexId(0));
  ASSERT_EQ(s1.normalized.size(), s2.normalized.size());
  for (size_t a = 0; a < s1.normalized.size(); ++a) {
    EXPECT_NEAR(s1.normalized[a], s2.normalized[a], 1e-9);
  }
}

}  // namespace
}  // namespace cspm::core
