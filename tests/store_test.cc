// Tests for the store layer: codec round trips, pager paging/free-list/
// atomic-commit behaviour, the ModelStore catalog, and — critically —
// clean Status errors (no crashes) on every corruption mode: truncation,
// bad magic, flipped bytes (CRC), and versions from the future.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/session.h"
#include "obs/metrics.h"
#include "store/codec.h"
#include "store/model_store.h"
#include "store/pager.h"
#include "testing_util.h"
#include "util/string_util.h"

namespace cspm::store {
namespace {

using cspm::testing::PaperExampleGraph;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// A mined model on the paper's running example, with its graph.
struct MinedFixture {
  graph::AttributedGraph graph;
  core::CspmModel model;
};

MinedFixture MineExample() {
  MinedFixture f;
  f.graph = PaperExampleGraph();
  f.model = engine::MineModel(f.graph).value();
  return f;
}

// --- codec ----------------------------------------------------------------

TEST(Codec, VarintRoundTripsEdgeValues) {
  const std::vector<uint64_t> values = {0,    1,        127,        128,
                                        300,  16383,    16384,      UINT32_MAX,
                                        1ull << 62, UINT64_MAX};
  Encoder enc;
  for (uint64_t v : values) enc.PutVarint(v);
  Decoder dec(enc.data());
  for (uint64_t v : values) {
    auto got = dec.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(Codec, DoubleRoundTripsBitExactly) {
  const std::vector<double> values = {0.0, -0.0, 1.0, -1.5, 3.141592653589793,
                                      1e-300, 1e300, 123456.789012345678};
  Encoder enc;
  for (double v : values) enc.PutDouble(v);
  Decoder dec(enc.data());
  for (double v : values) {
    auto got = dec.ReadDouble();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);  // bit-exact, not NEAR
  }
}

TEST(Codec, DeltaIdsRoundTrip) {
  const std::vector<uint32_t> ids = {0, 1, 5, 6, 1000, 4000000000u};
  Encoder enc;
  enc.PutDeltaIds(ids);
  enc.PutDeltaIds(std::vector<uint32_t>{});
  Decoder dec(enc.data());
  std::vector<uint32_t> got;
  ASSERT_TRUE(dec.ReadDeltaIds(&got).ok());
  EXPECT_EQ(got, ids);
  ASSERT_TRUE(dec.ReadDeltaIds(&got).ok());
  EXPECT_TRUE(got.empty());
}

TEST(Codec, TruncatedInputFailsCleanly) {
  Encoder enc;
  enc.PutVarint(123456789);
  enc.PutString("hello");
  enc.PutDouble(2.5);
  const std::string& bytes = enc.data();
  // Every prefix either decodes a shorter value or errors — never crashes.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Decoder dec(std::string_view(bytes).substr(0, cut));
    auto v = dec.ReadVarint();
    if (!v.ok()) continue;
    auto s = dec.ReadString();
    if (!s.ok()) continue;
    auto d = dec.ReadDouble();
    EXPECT_FALSE(d.ok()) << "cut=" << cut;
  }
}

TEST(Codec, DictionaryRoundTrips) {
  graph::AttributeDictionary dict;
  dict.Intern("rock");
  dict.Intern("rap");
  dict.Intern("sládkovičovo");  // non-ASCII survives (bytes, not glyphs)
  Encoder enc;
  EncodeDictionary(dict, &enc);
  Decoder dec(enc.data());
  auto decoded = DecodeDictionary(&dec);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), dict.size());
  for (graph::AttrId id(0); id.index() < dict.size(); ++id) {
    EXPECT_EQ(decoded->Name(id), dict.Name(id));
  }
}

TEST(Codec, ModelRoundTripsBitExactly) {
  auto f = MineExample();
  Encoder enc;
  EncodeModel(f.model, &enc);
  Decoder dec(enc.data());
  auto decoded = DecodeModel(&dec);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->astars.size(), f.model.astars.size());
  for (size_t i = 0; i < f.model.astars.size(); ++i) {
    const auto& a = f.model.astars[i];
    const auto& b = decoded->astars[i];
    EXPECT_EQ(a.core_values, b.core_values);
    EXPECT_EQ(a.leaf_values, b.leaf_values);
    EXPECT_EQ(a.frequency, b.frequency);
    EXPECT_EQ(a.core_total, b.core_total);
    EXPECT_EQ(a.coreset_frequency, b.coreset_frequency);
    EXPECT_EQ(a.code_length_bits, b.code_length_bits);
  }
  EXPECT_EQ(decoded->stats.initial_dl_bits, f.model.stats.initial_dl_bits);
  EXPECT_EQ(decoded->stats.final_dl_bits, f.model.stats.final_dl_bits);
  EXPECT_EQ(decoded->stats.iterations, f.model.stats.iterations);
  EXPECT_EQ(decoded->stats.per_iteration.size(),
            f.model.stats.per_iteration.size());
}

TEST(Codec, GraphSnapshotRoundTrips) {
  auto g = PaperExampleGraph();
  Encoder enc;
  EncodeGraph(g, &enc);
  Decoder dec(enc.data());
  auto decoded = DecodeGraph(&dec, g.dict());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_vertices(), g.num_vertices());
  EXPECT_EQ(decoded->num_edges(), g.num_edges());
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    const auto attrs_a = g.Attributes(v);
    const auto attrs_b = decoded->Attributes(v);
    EXPECT_TRUE(std::equal(attrs_a.begin(), attrs_a.end(), attrs_b.begin(),
                           attrs_b.end()));
    const auto nbrs_a = g.Neighbors(v);
    const auto nbrs_b = decoded->Neighbors(v);
    EXPECT_TRUE(std::equal(nbrs_a.begin(), nbrs_a.end(), nbrs_b.begin(),
                           nbrs_b.end()));
  }
}

// --- pager ----------------------------------------------------------------

TEST(Pager, CreateOpenRoundTrip) {
  const std::string path = TempPath("pager_roundtrip.cspm");
  {
    auto pager = Pager::Create(path).value();
    EXPECT_EQ(pager.num_pages(), 1u);
  }
  EXPECT_TRUE(Pager::FileHasMagic(path));
  auto reopened = Pager::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_pages(), 1u);
  std::remove(path.c_str());
}

TEST(Pager, ChainSpansPagesAndPersists) {
  const std::string path = TempPath("pager_chain.cspm");
  // 3.5 pages of patterned payload.
  std::string bytes(Pager::kPagePayload * 7 / 2, '\0');
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>((i * 131) & 0xFF);
  }
  uint32_t head = 0;
  {
    auto pager = Pager::Create(path).value();
    head = pager.WriteChain(bytes).value();
    ASSERT_TRUE(pager.Commit().ok());
    EXPECT_EQ(pager.num_pages(), 5u);  // header + 4 chain pages
  }
  auto pager = Pager::Open(path).value();
  auto read = pager.ReadChain(head);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, bytes);
  std::remove(path.c_str());
}

TEST(Pager, FreeListRecyclesPages) {
  const std::string path = TempPath("pager_freelist.cspm");
  auto pager = Pager::Create(path).value();
  const std::string a(Pager::kPagePayload * 2, 'a');
  const uint32_t head_a = pager.WriteChain(a).value();
  ASSERT_TRUE(pager.Commit().ok());
  const uint32_t pages_after_a = pager.num_pages();

  ASSERT_TRUE(pager.FreeChain(head_a).ok());
  const std::string b(Pager::kPagePayload * 2, 'b');
  const uint32_t head_b = pager.WriteChain(b).value();
  ASSERT_TRUE(pager.Commit().ok());
  // The freed pages were reused: the file did not grow.
  EXPECT_EQ(pager.num_pages(), pages_after_a);
  EXPECT_EQ(pager.ReadChain(head_b).value(), b);
  std::remove(path.c_str());
}

TEST(Pager, CommitIsAtomicViaRename) {
  const std::string path = TempPath("pager_atomic.cspm");
  auto pager = Pager::Create(path).value();
  const uint32_t head = pager.WriteChain("payload one").value();
  ASSERT_TRUE(pager.Commit().ok());

  // A reader that opened the old image keeps reading it even after the
  // writer commits a new one: rename swaps the directory entry, not the
  // inode the reader holds open.
  auto reader = Pager::Open(path).value();
  ASSERT_TRUE(pager.FreeChain(head).ok());
  const uint32_t new_head = pager.WriteChain("payload two, longer").value();
  ASSERT_TRUE(pager.Commit().ok());

  EXPECT_EQ(reader.ReadChain(head).value(), "payload one");
  auto fresh = Pager::Open(path).value();
  EXPECT_EQ(fresh.ReadChain(new_head).value(), "payload two, longer");
  std::remove(path.c_str());
}

// --- model store ----------------------------------------------------------

TEST(ModelStore, PutGetListDeleteRoundTrip) {
  const std::string path = TempPath("store_roundtrip.cspm");
  std::remove(path.c_str());
  auto f = MineExample();
  {
    auto store = ModelStore::Create(path).value();
    StoredModel stored;
    stored.model = f.model;
    stored.dict = f.graph.dict();
    stored.graph = f.graph;
    ASSERT_TRUE(store.Put("example", stored).ok());
    stored.graph.reset();
    ASSERT_TRUE(store.Put("no-graph", stored).ok());
  }

  auto store = ModelStore::Open(path).value();
  EXPECT_EQ(store.size(), 2u);
  const auto infos = store.List();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "example");
  EXPECT_TRUE(infos[0].has_graph);
  EXPECT_EQ(infos[1].name, "no-graph");
  EXPECT_FALSE(infos[1].has_graph);

  auto got = store.Get("example");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->model.astars.size(), f.model.astars.size());
  for (size_t i = 0; i < f.model.astars.size(); ++i) {
    EXPECT_EQ(got->model.astars[i].code_length_bits,
              f.model.astars[i].code_length_bits);
    EXPECT_EQ(got->model.astars[i].core_values,
              f.model.astars[i].core_values);
  }
  ASSERT_TRUE(got->graph.has_value());
  EXPECT_EQ(got->graph->num_vertices(), f.graph.num_vertices());

  EXPECT_FALSE(store.Get("missing").ok());
  ASSERT_TRUE(store.Delete("example").ok());
  EXPECT_FALSE(store.Contains("example"));
  EXPECT_FALSE(store.Delete("example").ok());

  auto reopened = ModelStore::Open(path).value();
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_TRUE(reopened.Contains("no-graph"));
  std::remove(path.c_str());
}

TEST(ModelStore, PutReplacesAndRecyclesPages) {
  const std::string path = TempPath("store_replace.cspm");
  std::remove(path.c_str());
  auto f = MineExample();
  auto store = ModelStore::Create(path).value();
  StoredModel stored;
  stored.model = f.model;
  stored.dict = f.graph.dict();
  ASSERT_TRUE(store.Put("m", stored).ok());
  // A replace writes the new chain before freeing the old one (so a failed
  // Put never loses the previous version), which grows the file once by
  // one record; after that, freed pages recycle and the size is stable.
  ASSERT_TRUE(store.Put("m", stored).ok());
  const auto steady_bytes = ReadFileBytes(path).size();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.Put("m", stored).ok());
  EXPECT_EQ(ReadFileBytes(path).size(), steady_bytes);
  EXPECT_EQ(store.size(), 1u);
  std::remove(path.c_str());
}

TEST(ModelStore, OpenOrCreateNeverClobbersExistingFiles) {
  const std::string path = TempPath("store_openorcreate.cspm");
  // An existing file that is not a store must be refused, not destroyed.
  WriteFileBytes(path, "precious user data, not a store\n");
  auto opened = ModelStore::OpenOrCreate(path);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(ReadFileBytes(path), "precious user data, not a store\n");
  // Same for a corrupt (truncated) store.
  std::remove(path.c_str());
  {
    auto store = ModelStore::Create(path).value();
  }
  const std::string header = ReadFileBytes(path);
  WriteFileBytes(path, header.substr(0, 100));
  EXPECT_FALSE(ModelStore::OpenOrCreate(path).ok());
  EXPECT_EQ(ReadFileBytes(path).size(), 100u);
  // Absent file → fresh store; healthy store → opened.
  std::remove(path.c_str());
  EXPECT_TRUE(ModelStore::OpenOrCreate(path).ok());
  EXPECT_TRUE(ModelStore::OpenOrCreate(path).ok());
  std::remove(path.c_str());
}

TEST(ModelStore, SessionSaveLoadBinaryAutoDetects) {
  const std::string path = TempPath("store_session.cspm");
  std::remove(path.c_str());
  auto g = PaperExampleGraph();
  auto session = std::move(engine::MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  ASSERT_TRUE(session.SaveModel(path).ok());  // .cspm → binary store
  EXPECT_TRUE(ModelStore::IsStoreFile(path));

  auto other = std::move(engine::MiningSession::Create(g)).value();
  ASSERT_TRUE(other.LoadModel(path).ok());  // magic auto-detect
  ASSERT_EQ(other.model().astars.size(), session.model().astars.size());
  for (size_t i = 0; i < session.model().astars.size(); ++i) {
    EXPECT_EQ(other.model().astars[i].code_length_bits,
              session.model().astars[i].code_length_bits);
    EXPECT_EQ(other.model().astars[i].leaf_values,
              session.model().astars[i].leaf_values);
  }
  EXPECT_EQ(other.model().stats.final_dl_bits,
            session.model().stats.final_dl_bits);
  std::remove(path.c_str());
}

TEST(ModelStore, SessionSaveTextStaysSupported) {
  const std::string path = TempPath("store_session_text.model");
  auto g = PaperExampleGraph();
  auto session = std::move(engine::MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  ASSERT_TRUE(session.SaveModel(path).ok());  // no .cspm → text
  EXPECT_FALSE(ModelStore::IsStoreFile(path));
  auto other = std::move(engine::MiningSession::Create(g)).value();
  ASSERT_TRUE(other.LoadModel(path).ok());
  EXPECT_EQ(other.model().astars.size(), session.model().astars.size());
  std::remove(path.c_str());
}

// --- corruption handling --------------------------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("store_corruption.cspm");
    std::remove(path_.c_str());
    auto f = MineExample();
    auto store = ModelStore::Create(path_).value();
    StoredModel stored;
    stored.model = f.model;
    stored.dict = f.graph.dict();
    stored.graph = f.graph;
    ASSERT_TRUE(store.Put("m", stored).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GE(bytes_.size(), 2 * Pager::kPageSize);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::string bytes_;
};

TEST_F(CorruptionTest, TruncatedFileFailsCleanly) {
  // Shorter than one page.
  WriteFileBytes(path_, bytes_.substr(0, 100));
  EXPECT_FALSE(ModelStore::Open(path_).ok());
  // A whole page missing relative to the header's declared page count.
  WriteFileBytes(path_, bytes_.substr(0, bytes_.size() - Pager::kPageSize));
  auto truncated = ModelStore::Open(path_);
  EXPECT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("truncated"),
            std::string::npos);
  // Ragged tail (not a multiple of the page size).
  WriteFileBytes(path_, bytes_.substr(0, bytes_.size() - 17));
  EXPECT_FALSE(ModelStore::Open(path_).ok());
}

TEST_F(CorruptionTest, BadMagicFailsCleanly) {
  std::string corrupt = bytes_;
  corrupt[0] = 'X';
  WriteFileBytes(path_, corrupt);
  auto opened = ModelStore::Open(path_);
  EXPECT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("magic"), std::string::npos);
  EXPECT_FALSE(ModelStore::IsStoreFile(path_));
  // The session loader treats a non-magic file as text and reports a parse
  // error rather than crashing.
  auto g = PaperExampleGraph();
  auto session = std::move(engine::MiningSession::Create(g)).value();
  EXPECT_FALSE(session.LoadModel(path_).ok());
}

TEST_F(CorruptionTest, FlippedByteFailsChecksum) {
  // Flip one payload byte in the record chain. The file is laid out
  // [header][plan extent][record chain][catalog leaf], so the last page
  // before the catalog is always a record page (extent pages have no
  // per-page CRC — their corruption tests live in invariants_test).
  std::string corrupt = bytes_;
  corrupt[bytes_.size() - 2 * Pager::kPageSize + 100] ^= 0x40;
  WriteFileBytes(path_, corrupt);
  // Open may succeed (only header + catalog pages are touched) but the
  // read of a damaged chain must fail with a checksum error somewhere.
  auto store_or = ModelStore::Open(path_);
  if (store_or.ok()) {
    auto got = store_or->Get("m");
    EXPECT_FALSE(got.ok());
    EXPECT_NE(got.status().message().find("checksum"), std::string::npos);
  } else {
    EXPECT_NE(store_or.status().message().find("checksum"),
              std::string::npos);
  }
}

TEST_F(CorruptionTest, EveryFlippedPageIsDetected) {
  // Whichever page the flip lands in, the store either refuses to open,
  // refuses the Get, or fails fsck — never silently serves garbage. Plan
  // extent pages carry no per-page CRC (the open path is O(1) by design),
  // so their detector is the fsck tier: slab CRCs inside the section,
  // the zero-padding sweep outside it.
  for (size_t page = 0; page * Pager::kPageSize < bytes_.size(); ++page) {
    std::string corrupt = bytes_;
    corrupt[page * Pager::kPageSize + 200] ^= 0x01;
    WriteFileBytes(path_, corrupt);
    auto store_or = ModelStore::Open(path_);
    if (!store_or.ok()) continue;
    auto got = store_or->Get("m");
    if (got.ok()) {
      EXPECT_FALSE(store_or->Fsck().ok()) << "page " << page;
    }
  }
}

TEST_F(CorruptionTest, VersionMismatchFailsCleanly) {
  // Both a from-the-future and a stale (pre-WAL catalog) version are
  // rejected at open with a format error, not misparsed.
  for (const char version : {char{99}, char{1}}) {
    std::string corrupt = bytes_;
    corrupt[8] = version;  // format version field (LE low byte)
    WriteFileBytes(path_, corrupt);
    auto opened = ModelStore::Open(path_);
    EXPECT_FALSE(opened.ok());
    EXPECT_NE(opened.status().message().find("format version"),
              std::string::npos);
  }
}

TEST_F(CorruptionTest, LoadIntoRegistryAndSessionFailsCleanly) {
  std::string corrupt = bytes_;
  corrupt[bytes_.size() - 1000] ^= 0x10;
  WriteFileBytes(path_, corrupt);
  auto g = PaperExampleGraph();
  auto session = std::move(engine::MiningSession::Create(g)).value();
  Status st = session.LoadModel(path_);
  // Either the damaged page is in the record (checksum error) or in the
  // catalog (open error); both must surface as Status, not crashes.
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(session.has_model());
}

TEST_F(CorruptionTest, CorruptRecordCanStillBeDeletedOrReplaced) {
  // Damage a page of the record, then verify the store is repairable: the
  // catalog entry can be dropped (rm) or overwritten (save) even though
  // the old chain can no longer be walked. (Last page before the catalog
  // leaf = a record page; see FlippedByteFailsChecksum.)
  std::string corrupt = bytes_;
  corrupt[bytes_.size() - 2 * Pager::kPageSize + 100] ^= 0x40;
  WriteFileBytes(path_, corrupt);
  auto store_or = ModelStore::Open(path_);
  if (!store_or.ok()) return;  // flip landed in the catalog; nothing to fix
  ASSERT_FALSE(store_or->Get("m").ok());

  auto f = MineExample();
  StoredModel replacement;
  replacement.model = f.model;
  replacement.dict = f.graph.dict();
  ASSERT_TRUE(store_or->Put("m", replacement).ok());
  EXPECT_TRUE(store_or->Get("m").ok());

  ASSERT_TRUE(store_or->Delete("m").ok());
  EXPECT_EQ(store_or->size(), 0u);
  // The repaired store reopens cleanly.
  auto reopened = ModelStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), 0u);
}

// --- write-ahead log --------------------------------------------------------

graph::GraphDelta SampleDelta(uint32_t salt) {
  graph::GraphDelta delta;
  delta.AddEdge(graph::VertexId(salt), graph::VertexId(salt + 1));
  delta.RemoveEdge(graph::VertexId(salt + 2), graph::VertexId(salt + 3));
  delta.SetAttribute(graph::VertexId(salt),
                     "wal-value-" + std::to_string(salt));
  delta.ClearAttribute(graph::VertexId(salt + 1), "other");
  delta.AddVertex({"x", "y"});
  return delta;
}

void ExpectDeltasEqual(const graph::GraphDelta& a, const graph::GraphDelta& b) {
  Encoder ea;
  Encoder eb;
  EncodeGraphDelta(a, &ea);
  EncodeGraphDelta(b, &eb);
  EXPECT_EQ(ea.data(), eb.data());
}

TEST(Codec, GraphDeltaRoundTrips) {
  const graph::GraphDelta delta = SampleDelta(7);
  Encoder enc;
  EncodeGraphDelta(delta, &enc);
  Decoder dec(enc.data());
  auto decoded = DecodeGraphDelta(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(dec.AtEnd());
  ExpectDeltasEqual(delta, *decoded);
}

TEST(Wal, AppendReadClearAndCompactOnPut) {
  const std::string path = TempPath("wal_basic");
  MinedFixture f = MineExample();
  StoredModel stored;
  stored.model = f.model;
  stored.dict = f.graph.dict();
  {
    auto store = std::move(ModelStore::Create(path)).value();
    ASSERT_TRUE(store.Put("m", stored).ok());
    // Appending to an unknown model is NotFound.
    EXPECT_FALSE(store.AppendDelta("ghost", SampleDelta(1)).ok());
    ASSERT_TRUE(store.AppendDelta("m", SampleDelta(1)).ok());
    ASSERT_TRUE(store.AppendDelta("m", SampleDelta(2)).ok());
    ASSERT_TRUE(store.AppendDelta("m", SampleDelta(3)).ok());
  }
  {
    // Reopen: WAL survives, in order, and List reports it.
    auto store = std::move(ModelStore::Open(path)).value();
    EXPECT_EQ(store.List().front().wal_records, 3u);
    auto replay = store.ReadWal("m");
    ASSERT_TRUE(replay.ok());
    EXPECT_FALSE(replay->truncated);
    ASSERT_EQ(replay->deltas.size(), 3u);
    for (uint32_t i = 0; i < 3; ++i) {
      ExpectDeltasEqual(replay->deltas[i], SampleDelta(i + 1));
    }
    // Put compacts: the fresh record reflects its deltas.
    ASSERT_TRUE(store.Put("m", stored).ok());
    EXPECT_EQ(store.List().front().wal_records, 0u);
    ASSERT_TRUE(store.AppendDelta("m", SampleDelta(4)).ok());
    ASSERT_TRUE(store.ClearWal("m").ok());
    EXPECT_EQ(store.ReadWal("m")->deltas.size(), 0u);
  }
  {
    // Pages of dropped WAL chains were recycled: appending again does not
    // leak the file (same size after compact + re-append cycles).
    auto store = std::move(ModelStore::Open(path)).value();
    ASSERT_TRUE(store.AppendDelta("m", SampleDelta(5)).ok());
  }
}

TEST(Wal, DeleteDropsWalChains) {
  const std::string path = TempPath("wal_delete");
  MinedFixture f = MineExample();
  StoredModel stored;
  stored.model = f.model;
  stored.dict = f.graph.dict();
  auto store = std::move(ModelStore::Create(path)).value();
  ASSERT_TRUE(store.Put("m", stored).ok());
  ASSERT_TRUE(store.AppendDelta("m", SampleDelta(1)).ok());
  ASSERT_TRUE(store.Delete("m").ok());
  EXPECT_FALSE(store.ReadWal("m").ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(ModelStoreErrors, MissingFileHasErrnoText) {
  auto opened = ModelStore::Open(TempPath("does_not_exist.cspm"));
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("No such file"),
            std::string::npos);
}

// --- v3 paged catalog index ------------------------------------------------

TEST(ModelStore, PutManyReplacesAndAudits) {
  const std::string path = TempPath("store_putmany.cspm");
  std::remove(path.c_str());
  MinedFixture f = MineExample();
  StoredModel real;
  real.model = f.model;
  real.dict = f.graph.dict();
  auto store = std::move(ModelStore::Create(path)).value();
  ASSERT_TRUE(store.Put("a", real).ok());

  // One batch: replaces "a", adds "b" and "c" — one commit, no page leaks.
  std::vector<std::pair<std::string, StoredModel>> batch;
  batch.emplace_back("a", real);
  batch.emplace_back("b", real);
  batch.emplace_back("c", real);
  ASSERT_TRUE(store.PutMany(batch).ok());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store.CheckInvariants().ok());
  EXPECT_TRUE(store.Fsck().ok());

  auto reopened = std::move(ModelStore::Open(path)).value();
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_TRUE(reopened.Get("b").ok());
  std::remove(path.c_str());
}

TEST(ModelStore, TenThousandModelsLookUpInLogPageReads) {
  const std::string path = TempPath("store_10k.cspm");
  std::remove(path.c_str());
  {
    auto store = std::move(ModelStore::Create(path)).value();
    // Empty models: catalog scale is what this test is about.
    std::vector<std::pair<std::string, StoredModel>> batch;
    batch.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      batch.emplace_back(StrFormat("m%05d", i),
                         StoredModel{{}, graph::AttributeDictionary{},
                                     std::nullopt});
    }
    ASSERT_TRUE(store.PutMany(batch).ok());
  }

  obs::Counter* reads = obs::GetCounter("store.catalog.index_page_reads");
  const uint64_t before_open = reads->Value();
  auto store = std::move(ModelStore::Open(path)).value();
  // Opening reads the header and the index root only; the total count
  // comes from the root, not from decoding 10k entries.
  EXPECT_EQ(store.size(), 10000u);
  const uint64_t after_open = reads->Value();
  EXPECT_LE(after_open - before_open, 1u);

  ASSERT_TRUE(store.Contains("m04567"));
  const uint64_t after_lookup = reads->Value();
#ifndef CSPM_OBS_OFF
  // O(log n): one lookup descends the tree depth, nowhere near the ~60+
  // pages the full catalog occupies. (Counter asserts need obs compiled
  // in; the functional checks around them do not.)
  EXPECT_GE(after_lookup - after_open, 1u);
  EXPECT_LE(after_lookup - after_open, 4u);
#endif

  // The descent result is cached; a repeat lookup reads nothing.
  auto got = store.Get("m04567");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(reads->Value(), after_lookup);

  // A miss also descends O(log n) pages.
  EXPECT_FALSE(store.Contains("nope"));
  EXPECT_LE(reads->Value() - after_lookup, 4u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cspm::store
