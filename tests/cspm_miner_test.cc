// End-to-end miner tests: termination, monotone DL, Basic/Partial
// agreement, planted-pattern recovery, losslessness of the final state,
// multi-value coresets and the instrumentation required by Fig. 5.
#include "cspm/miner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cspm/verify.h"
#include "datasets/synthetic.h"
#include "graph/generators.h"
#include "testing_util.h"

namespace cspm::core {
namespace {

graph::AttributedGraph PlantedGraph(uint64_t seed) {
  graph::PlantedGraphOptions options;
  options.num_vertices = 300;
  options.noise_vocabulary = 15;
  options.seed = seed;
  std::vector<graph::PlantedAStar> rules = {
      {{"fever"}, {"cough", "fatigue"}, 0.9},
      {{"vip"}, {"premium", "churn"}, 0.85},
  };
  return graph::PlantedAStarGraph(options, rules).value();
}

TEST(CspmMinerTest, TerminatesAndCompressesPartial) {
  auto g = PlantedGraph(1);
  CspmOptions options;
  options.strategy = SearchStrategy::kPartial;
  auto model = CspmMiner(options).Mine(g).value();
  EXPECT_GT(model.stats.iterations, 0u);
  EXPECT_LT(model.stats.final_dl_bits, model.stats.initial_dl_bits);
  EXPECT_FALSE(model.astars.empty());
}

TEST(CspmMinerTest, TerminatesAndCompressesBasic) {
  auto g = PlantedGraph(1);
  CspmOptions options;
  options.strategy = SearchStrategy::kBasic;
  auto model = CspmMiner(options).Mine(g).value();
  EXPECT_GT(model.stats.iterations, 0u);
  EXPECT_LT(model.stats.final_dl_bits, model.stats.initial_dl_bits);
}

TEST(CspmMinerTest, AcceptedGainsArePositive) {
  auto g = PlantedGraph(2);
  CspmOptions options;
  options.record_iteration_stats = true;
  auto model = CspmMiner(options).Mine(g).value();
  for (const auto& it : model.stats.per_iteration) {
    if (it.iteration == 0) continue;  // initial candidate generation
    EXPECT_GT(it.accepted_gain_bits, 0.0) << "iteration " << it.iteration;
  }
}

TEST(CspmMinerTest, OutputSortedByCodeLength) {
  auto g = PlantedGraph(3);
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  for (size_t i = 1; i < model.astars.size(); ++i) {
    EXPECT_LE(model.astars[i - 1].code_length_bits,
              model.astars[i].code_length_bits + 1e-12);
  }
}

TEST(CspmMinerTest, FinalStateIsLossless) {
  auto g = PlantedGraph(4);
  for (auto strategy : {SearchStrategy::kBasic, SearchStrategy::kPartial}) {
    CspmOptions options;
    options.strategy = strategy;
    auto artifacts = CspmMiner(options).MineWithArtifacts(g).value();
    EXPECT_TRUE(VerifyLossless(g, artifacts.inverted_db).ok())
        << "strategy " << static_cast<int>(strategy);
  }
}

TEST(CspmMinerTest, RecoversPlantedPattern) {
  auto g = PlantedGraph(5);
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  const graph::AttrId fever = g.dict().Find("fever");
  const graph::AttrId cough = g.dict().Find("cough");
  const graph::AttrId fatigue = g.dict().Find("fatigue");
  ASSERT_NE(fever, graph::AttributeDictionary::kNotFound);
  // Some merged a-star with core fever must join cough and fatigue.
  bool found = false;
  for (const auto& s : model.astars) {
    const bool core_fever =
        std::find(s.core_values.begin(), s.core_values.end(), fever) !=
        s.core_values.end();
    const bool has_cough =
        std::find(s.leaf_values.begin(), s.leaf_values.end(), cough) !=
        s.leaf_values.end();
    const bool has_fatigue =
        std::find(s.leaf_values.begin(), s.leaf_values.end(), fatigue) !=
        s.leaf_values.end();
    if (core_fever && has_cough && has_fatigue) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CspmMinerTest, BasicAndPartialReachSimilarDl) {
  // The two strategies take different greedy paths, but the final
  // description lengths should agree closely (the paper treats Partial as
  // an optimization, not a different algorithm).
  auto g = PlantedGraph(6);
  CspmOptions basic;
  basic.strategy = SearchStrategy::kBasic;
  CspmOptions partial;
  partial.strategy = SearchStrategy::kPartial;
  auto mb = CspmMiner(basic).Mine(g).value();
  auto mp = CspmMiner(partial).Mine(g).value();
  EXPECT_NEAR(mb.stats.final_dl_bits, mp.stats.final_dl_bits,
              0.05 * mb.stats.initial_dl_bits);
}

TEST(CspmMinerTest, PartialDoesFewerGainComputations) {
  auto g = PlantedGraph(7);
  CspmOptions basic;
  basic.strategy = SearchStrategy::kBasic;
  CspmOptions partial;
  partial.strategy = SearchStrategy::kPartial;
  auto mb = CspmMiner(basic).Mine(g).value();
  auto mp = CspmMiner(partial).Mine(g).value();
  if (mb.stats.iterations > 3 && mp.stats.iterations > 3) {
    EXPECT_LT(mp.stats.total_gain_computations,
              mb.stats.total_gain_computations);
  }
}

TEST(CspmMinerTest, UpdateRatioInstrumentationFilled) {
  auto g = PlantedGraph(8);
  CspmOptions options;
  options.record_iteration_stats = true;
  auto model = CspmMiner(options).Mine(g).value();
  ASSERT_FALSE(model.stats.per_iteration.empty());
  for (const auto& it : model.stats.per_iteration) {
    EXPECT_GT(it.possible_pairs, 0u);
    EXPECT_GE(it.UpdateRatio(), 0.0);
    EXPECT_LE(it.UpdateRatio(), 1.0 + 1e-9);
  }
}

TEST(CspmMinerTest, MaxIterationsRespected) {
  auto g = PlantedGraph(9);
  CspmOptions options;
  options.max_iterations = 2;
  auto model = CspmMiner(options).Mine(g).value();
  EXPECT_LE(model.stats.iterations, 2u);
}

TEST(CspmMinerTest, SingletonFilterWorks) {
  auto g = PlantedGraph(10);
  CspmOptions keep;
  keep.include_singleton_leafsets = true;
  CspmOptions drop;
  drop.include_singleton_leafsets = false;
  auto mk = CspmMiner(keep).Mine(g).value();
  auto md = CspmMiner(drop).Mine(g).value();
  EXPECT_GT(mk.astars.size(), md.astars.size());
  for (const auto& s : md.astars) EXPECT_GE(s.leaf_values.size(), 2u);
}

TEST(CspmMinerTest, DataOnlyGainPolicyCompressesAtLeastAsMuch) {
  // Without the model-cost penalty more merges are accepted, so the pure
  // data term shrinks at least as much.
  auto g = PlantedGraph(11);
  CspmOptions with_model;
  with_model.gain_policy = GainPolicy::kDataPlusModel;
  CspmOptions data_only;
  data_only.gain_policy = GainPolicy::kDataOnly;
  auto mw = CspmMiner(with_model).Mine(g).value();
  auto md = CspmMiner(data_only).Mine(g).value();
  EXPECT_GE(md.stats.iterations, mw.stats.iterations);
}

TEST(CspmMinerTest, MultiValueCoresetsRun) {
  auto g = PlantedGraph(12);
  CspmOptions options;
  options.multi_value_coresets = true;
  auto artifacts = CspmMiner(options).MineWithArtifacts(g).value();
  EXPECT_LE(artifacts.model.stats.final_dl_bits,
            artifacts.model.stats.initial_dl_bits);
  EXPECT_TRUE(VerifyLossless(g, artifacts.inverted_db).ok());
  // At least one coreset should carry multiple values when attributes
  // co-occur strongly (fever/vip vertices carry noise values too).
  bool multi = false;
  for (CoreId c(0); c.index() < artifacts.inverted_db.num_coresets(); ++c) {
    if (artifacts.inverted_db.CoresetValues(c).size() >= 2) multi = true;
  }
  EXPECT_TRUE(multi);
}

TEST(CspmMinerTest, PaperExampleMinesBCPattern) {
  // On the running example the best merge is {b},{c} (Section IV-E); the
  // final model must contain an a-star with leafset {b, c}.
  auto g = cspm::testing::PaperExampleGraph();
  CspmOptions options;
  options.gain_policy = GainPolicy::kDataOnly;  // the paper's Alg. 2 check
  auto model = CspmMiner(options).Mine(g).value();
  const graph::AttrId b = g.dict().Find("b");
  const graph::AttrId c = g.dict().Find("c");
  bool found = false;
  for (const auto& s : model.astars) {
    std::vector<graph::AttrId> bc{b, c};
    std::sort(bc.begin(), bc.end());
    if (s.leaf_values == bc) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CspmMinerTest, DeterministicAcrossRuns) {
  auto g = PlantedGraph(13);
  auto m1 = CspmMiner(CspmOptions{}).Mine(g).value();
  auto m2 = CspmMiner(CspmOptions{}).Mine(g).value();
  ASSERT_EQ(m1.astars.size(), m2.astars.size());
  EXPECT_EQ(m1.stats.iterations, m2.stats.iterations);
  EXPECT_DOUBLE_EQ(m1.stats.final_dl_bits, m2.stats.final_dl_bits);
}

TEST(CspmMinerTest, WorksOnDatasetGenerators) {
  auto g = datasets::MakeUsflightLike(3).value();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  EXPECT_LT(model.stats.final_dl_bits, model.stats.initial_dl_bits);
}

}  // namespace
}  // namespace cspm::core
