// Tests for the node-attribute-completion task, the baseline models and
// the CSPM fusion (Section VI-C / Table IV machinery).
#include "completion/task.h"

#include <gtest/gtest.h>

#include <cmath>

#include "completion/fusion.h"
#include "completion/models.h"
#include "cspm/miner.h"
#include "graph/generators.h"

namespace cspm::completion {
namespace {

graph::AttributedGraph HomophilyGraph(uint64_t seed,
                                      uint32_t num_vertices = 400) {
  graph::CommunityGraphOptions options;
  options.num_vertices = num_vertices;
  options.num_communities = 5;
  options.intra_probability = 0.03;
  options.inter_probability = 0.001;
  options.attributes_per_vertex = 4;
  options.community_pool_size = 6;
  options.global_pool_size = 40;
  options.attribute_affinity = 0.85;
  options.seed = seed;
  return graph::MakeCommunityGraph(options).value().graph;
}

TEST(CompletionTaskTest, MaskingConsistency) {
  auto g = HomophilyGraph(1);
  auto data = MakeCompletionTask(g, 0.3, 7).value();
  EXPECT_EQ(data.num_nodes(), g.num_vertices().index());
  EXPECT_EQ(data.num_attributes(), g.num_attribute_values());
  EXPECT_NEAR(static_cast<double>(data.test_nodes.size()),
              0.3 * g.num_vertices().value(), 1.0);
  // Test rows of x are zero, observed rows match truth; masked graph has
  // no attributes on test vertices.
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      if (data.observed[v.index()]) {
        EXPECT_EQ(data.x(v.index(), a), data.truth(v.index(), a));
      } else {
        EXPECT_EQ(data.x(v.index(), a), 0.0);
      }
    }
    if (!data.observed[v.index()]) {
      EXPECT_TRUE(data.masked_graph.Attributes(v).empty());
    }
  }
  // Topology preserved.
  EXPECT_EQ(data.masked_graph.num_edges(), g.num_edges());
}

TEST(CompletionTaskTest, DictionaryPreserved) {
  auto g = HomophilyGraph(2);
  auto data = MakeCompletionTask(g, 0.2, 9).value();
  ASSERT_EQ(data.masked_graph.num_attribute_values(),
            g.num_attribute_values());
  for (graph::AttrId a(0); a.index() < g.num_attribute_values(); ++a) {
    EXPECT_EQ(data.masked_graph.dict().Name(a), g.dict().Name(a));
  }
}

TEST(CompletionTaskTest, InvalidFractionRejected) {
  auto g = HomophilyGraph(3);
  EXPECT_FALSE(MakeCompletionTask(g, 0.0, 1).ok());
  EXPECT_FALSE(MakeCompletionTask(g, 1.0, 1).ok());
}

TEST(CompletionTaskTest, DeterministicInSeed) {
  auto g = HomophilyGraph(4);
  auto d1 = MakeCompletionTask(g, 0.25, 11).value();
  auto d2 = MakeCompletionTask(g, 0.25, 11).value();
  EXPECT_EQ(d1.test_nodes, d2.test_nodes);
}

TEST(EvaluateScoresTest, PerfectScoresGiveHighRecall) {
  auto g = HomophilyGraph(5);
  auto data = MakeCompletionTask(g, 0.3, 13).value();
  // Use the truth itself as the score matrix: Recall@K should be maximal
  // for K >= max attributes per node.
  auto metrics = EvaluateScores(data, data.truth, {50});
  EXPECT_NEAR(metrics.recall[0], 1.0, 1e-9);
  EXPECT_NEAR(metrics.ndcg[0], 1.0, 1e-9);
}

TEST(EvaluateScoresTest, RandomScoresAreWorseThanTruth) {
  auto g = HomophilyGraph(6);
  auto data = MakeCompletionTask(g, 0.3, 17).value();
  Rng rng(3);
  nn::Matrix random(data.num_nodes(), data.num_attributes());
  for (double& v : random.data()) v = rng.UniformDouble();
  auto truth_metrics = EvaluateScores(data, data.truth, {10});
  auto random_metrics = EvaluateScores(data, random, {10});
  EXPECT_GT(truth_metrics.recall[0], random_metrics.recall[0]);
}

TEST(ModelsTest, NeighAggreBeatsRandomOnHomophily) {
  auto g = HomophilyGraph(7);
  auto data = MakeCompletionTask(g, 0.3, 19).value();
  auto model = MakeNeighAggre();
  nn::Matrix scores = model->PredictScores(data);
  Rng rng(5);
  nn::Matrix random(data.num_nodes(), data.num_attributes());
  for (double& v : random.data()) v = rng.UniformDouble();
  auto na = EvaluateScores(data, scores, {10});
  auto rnd = EvaluateScores(data, random, {10});
  EXPECT_GT(na.recall[0], rnd.recall[0] * 1.5);
}

TEST(ModelsTest, AllModelsProduceFiniteScores) {
  auto g = HomophilyGraph(8, /*num_vertices=*/150);
  auto data = MakeCompletionTask(g, 0.25, 23).value();
  ModelOptions options;
  options.epochs = 12;  // keep the test fast
  options.vae.epochs = 12;
  for (auto& model : MakeAllModels(options)) {
    nn::Matrix scores = model->PredictScores(data);
    ASSERT_EQ(scores.rows(), data.num_nodes()) << model->name();
    ASSERT_EQ(scores.cols(), data.num_attributes()) << model->name();
    for (double v : scores.data()) {
      ASSERT_TRUE(std::isfinite(v)) << model->name();
    }
  }
}

TEST(ModelsTest, GcnLearnsBetterThanUntrained) {
  auto g = HomophilyGraph(9, /*num_vertices=*/250);
  auto data = MakeCompletionTask(g, 0.3, 29).value();
  ModelOptions trained;
  trained.epochs = 120;
  ModelOptions untrained;
  untrained.epochs = 1;
  auto m_trained = EvaluateScores(
      data, MakeGcn(trained)->PredictScores(data), {10});
  auto m_untrained = EvaluateScores(
      data, MakeGcn(untrained)->PredictScores(data), {10});
  EXPECT_GE(m_trained.recall[0], m_untrained.recall[0]);
}

TEST(FusionTest, ImprovesNeighAggreOnHomophilyGraph) {
  // The headline behaviour of Table IV: CSPM fusion lifts the weak
  // baseline substantially.
  auto g = HomophilyGraph(10, /*num_vertices=*/500);
  auto data = MakeCompletionTask(g, 0.3, 31).value();
  core::CspmOptions mopts;
  auto cspm_model = core::CspmMiner(mopts).Mine(data.masked_graph).value();

  auto model = MakeNeighAggre();
  nn::Matrix base_scores = model->PredictScores(data);
  nn::Matrix fused_scores = FuseWithCspm(base_scores, data, cspm_model);

  auto base = EvaluateScores(data, base_scores, {10, 20});
  auto fused = EvaluateScores(data, fused_scores, {10, 20});
  // Fusion should not degrade and typically improves Recall@10.
  EXPECT_GE(fused.recall[0], base.recall[0] * 0.95);
  EXPECT_GE(fused.recall[0] + fused.recall[1],
            (base.recall[0] + base.recall[1]) * 0.98);
}

TEST(FusionTest, ObservedRowsUntouched) {
  auto g = HomophilyGraph(11, /*num_vertices=*/150);
  auto data = MakeCompletionTask(g, 0.25, 37).value();
  auto cspm_model =
      core::CspmMiner(core::CspmOptions{}).Mine(data.masked_graph).value();
  auto model = MakeNeighAggre();
  nn::Matrix base_scores = model->PredictScores(data);
  nn::Matrix fused_scores = FuseWithCspm(base_scores, data, cspm_model);
  for (graph::VertexId v(0); v.index() < data.num_nodes(); ++v) {
    if (!data.observed[v.index()]) continue;
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      EXPECT_EQ(fused_scores(v.index(), a), base_scores(v.index(), a));
    }
  }
}

}  // namespace
}  // namespace cspm::completion
