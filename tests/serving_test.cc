// Tests for the batch serving layer: ServingEngine sharding determinism
// (bit-identical at 1, 4 and auto threads, and to the legacy per-vertex
// path), clean Status on bad input, and the session / registry wiring.
#include "engine/serving.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "cspm/scoring.h"
#include "engine/model_registry.h"
#include "engine/session.h"
#include "graph/generators.h"
#include "testing_util.h"
#include "util/rng.h"

namespace cspm::engine {
namespace {

graph::AttributedGraph SmallRandomGraph(uint64_t seed) {
  Rng rng(seed);
  return graph::ErdosRenyi(180, 0.05, 16, 3, &rng).value();
}

void ExpectSameScores(const AttributeScores& got, const AttributeScores& want,
                      graph::VertexId v) {
  ASSERT_EQ(got.raw.size(), want.raw.size());
  for (size_t i = 0; i < want.raw.size(); ++i) {
    // Bit-identical, including -inf sentinels: EXPECT_EQ, never NEAR.
    ASSERT_EQ(got.raw[i], want.raw[i]) << "v=" << v << " attr=" << i;
    ASSERT_EQ(got.normalized[i], want.normalized[i])
        << "v=" << v << " attr=" << i;
  }
}

// The acceptance criterion: ScoreBatch is bit-identical to the legacy
// per-vertex ScoreAttributes path for every vertex/value at 1, 4 and auto
// threads.
TEST(ServingEngine, BatchMatchesLegacyAtEveryThreadCount) {
  auto g = SmallRandomGraph(7);
  auto model = MineModel(g).value();
  std::vector<graph::VertexId> all;
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) all.push_back(v);

  std::vector<core::AttributeScores> legacy;
  legacy.reserve(all.size());
  for (graph::VertexId v : all) {
    legacy.push_back(core::ScoreAttributes(g, model, v));
  }

  for (const uint32_t threads : {1u, 4u, 0u}) {
    ServingOptions options;
    options.num_threads = threads;
    auto engine = ServingEngine::Create(g, model, options).value();
    auto batch = engine.ScoreBatch(all).value();
    ASSERT_EQ(batch.size(), all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      ExpectSameScores(batch[i], legacy[i], all[i]);
    }
    auto everything = engine.ScoreAll();
    ASSERT_EQ(everything.size(), all.size());
    for (size_t i = 0; i < all.size(); ++i) {
      ExpectSameScores(everything[i], legacy[i], all[i]);
    }
  }
}

TEST(ServingEngine, BatchSlotsFollowInputOrderWithDuplicates) {
  auto g = cspm::testing::PaperExampleGraph();
  auto model = MineModel(g).value();
  auto engine = ServingEngine::Create(g, model).value();
  const std::vector<graph::VertexId> vertices = {VertexId(4), VertexId(0),
                                                 VertexId(4), VertexId(2),
                                                 VertexId(0)};
  auto batch = engine.ScoreBatch(vertices).value();
  ASSERT_EQ(batch.size(), vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    ExpectSameScores(batch[i], core::ScoreAttributes(g, model, vertices[i]),
                     vertices[i]);
  }
}

// Concurrent const callers on one sharded engine: dispatches serialize on
// the pool, so every caller gets complete, correct batches (no clobbered
// jobs, no deadlock).
TEST(ServingEngine, ConcurrentScoreBatchCallersAreSafe) {
  auto g = SmallRandomGraph(11);
  auto model = MineModel(g).value();
  ServingOptions options;
  options.num_threads = 2;
  auto engine = ServingEngine::Create(g, model, options).value();
  const auto expected = engine.ScoreAll();

  std::vector<std::thread> callers;
  std::atomic<int> mismatches{0};
  callers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        const auto got = engine.ScoreAll();
        if (got.size() != expected.size()) {
          ++mismatches;
          continue;
        }
        for (size_t v = 0; v < expected.size(); ++v) {
          if (got[v].raw != expected[v].raw ||
              got[v].normalized != expected[v].normalized) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServingEngine, OutOfRangeVertexIsCleanStatus) {
  auto g = cspm::testing::PaperExampleGraph();
  auto model = MineModel(g).value();
  auto engine = ServingEngine::Create(g, model).value();

  auto batch = engine.ScoreBatch(std::vector<graph::VertexId>{VertexId(0), VertexId(99)});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kOutOfRange);

  auto single = engine.ScoreVertex(VertexId(99));
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(single.status().code(), StatusCode::kOutOfRange);

  EXPECT_TRUE(engine.ScoreVertex(VertexId(0)).ok());
}

TEST(ServingEngine, DictionaryNotCoveringGraphIsCleanStatus) {
  auto g = cspm::testing::PaperExampleGraph();
  auto model = MineModel(g).value();
  // A plan compiled for a smaller attribute space than the graph's
  // dictionary (a mismatched model/graph pairing).
  auto narrow_plan = std::make_shared<const core::ScoringPlan>(
      core::ScoringPlan::Compile(model, g.num_attribute_values() - 1));
  auto engine = ServingEngine::Create(g, narrow_plan);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);

  auto null_plan = ServingEngine::Create(g, nullptr);
  ASSERT_FALSE(null_plan.ok());
  EXPECT_EQ(null_plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(MiningSessionServing, ScoreBatchMatchesScoreAndServeSharesPlan) {
  auto g = SmallRandomGraph(23);
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  ASSERT_NE(session.plan(), nullptr);

  const std::vector<graph::VertexId> vertices = {VertexId(0), VertexId(17),
                                                 VertexId(3), VertexId(99),
                                                 VertexId(3)};
  auto batch = session.ScoreBatch(vertices).value();
  ASSERT_EQ(batch.size(), vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    ExpectSameScores(batch[i], session.Score(vertices[i]), vertices[i]);
  }

  auto engine = session.Serve().value();
  EXPECT_EQ(&engine.plan(), session.plan().get());
  ExpectSameScores(engine.ScoreVertex(VertexId(17)).value(),
                   session.Score(VertexId(17)), VertexId(17));
}

TEST(MiningSessionServing, ServeWithoutModelIsCleanStatus) {
  auto g = cspm::testing::PaperExampleGraph();
  auto session = std::move(MiningSession::Create(g)).value();
  auto engine = session.Serve();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
  auto batch = session.ScoreBatch(std::vector<graph::VertexId>{0});
  ASSERT_FALSE(batch.ok());
}

TEST(RegistryServing, HandlesServeBatchesAndSurvivePlanSwap) {
  ModelRegistry registry;
  auto g = SmallRandomGraph(41);
  ServableModel m;
  m.model = MineModel(g).value();
  m.dict = g.dict();
  m.graph = std::make_shared<const graph::AttributedGraph>(g);
  auto handle = registry.Put("hot", m);
  ASSERT_NE(handle->plan, nullptr);

  auto engine = handle->Serve().value();
  auto batch = engine.ScoreAll();
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    ExpectSameScores(batch[v.index()], handle->ScoreVertex(v).value(), v);
  }

  // Hot reload: replacing the registered model must not disturb engines
  // built from the old handle — plan and model swap together.
  ServableModel replacement;
  replacement.dict = g.dict();
  replacement.graph = std::make_shared<const graph::AttributedGraph>(g);
  registry.Put("hot", std::move(replacement));
  EXPECT_EQ(registry.Get("hot")->model.astars.size(), 0u);
  auto after_swap = engine.ScoreAll();
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    ExpectSameScores(after_swap[v.index()], batch[v.index()], v);
  }
}

// An engine built from a registry handle retains the ServableModel
// itself: dropping the handle and removing the entry must not leave the
// engine scoring a freed graph (exercised under ASan in CI).
TEST(RegistryServing, EngineOutlivesHandleAndRegistryEntry) {
  ModelRegistry registry;
  auto g = cspm::testing::PaperExampleGraph();
  ServableModel m;
  m.model = MineModel(g).value();
  m.dict = g.dict();
  m.graph = std::make_shared<const graph::AttributedGraph>(g);
  registry.Put("ephemeral", std::move(m));

  // Temporary handle: dies at the end of the full expression.
  auto engine = registry.Get("ephemeral")->Serve().value();
  auto before = engine.ScoreAll();
  ASSERT_TRUE(registry.Remove("ephemeral"));
  auto after = engine.ScoreAll();
  ASSERT_EQ(after.size(), before.size());
  for (size_t v = 0; v < before.size(); ++v) {
    EXPECT_EQ(after[v].raw, before[v].raw);
    EXPECT_EQ(after[v].normalized, before[v].normalized);
  }
}

TEST(RegistryServing, ServeWithoutSnapshotIsCleanStatus) {
  ModelRegistry registry;
  auto g = cspm::testing::PaperExampleGraph();
  ServableModel m;
  m.model = MineModel(g).value();
  m.dict = g.dict();
  auto handle = registry.Put("no-graph", std::move(m));
  auto engine = handle->Serve();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cspm::engine
