// Tests that the synthetic dataset generators produce graphs shaped like
// the paper's Table II.
#include "datasets/synthetic.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace cspm::datasets {
namespace {

using graph::ComputeStats;
using graph::GraphStats;

TEST(DatasetsTest, DblpLikeShape) {
  auto g = MakeDblpLike(1).value();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 2723u);
  // Table II: 3,464 edges, |Sc| = 127. Generator targets the same order.
  EXPECT_GT(s.num_edges, 2000u);
  EXPECT_LT(s.num_edges, 6000u);
  EXPECT_GT(s.num_coresets, 80u);
  EXPECT_LT(s.num_coresets, 200u);
}

TEST(DatasetsTest, DblpTrendLikeHasLargerVocabulary) {
  auto g = MakeDblpTrendLike(1).value();
  auto base = MakeDblpLike(1).value();
  GraphStats st = ComputeStats(g);
  GraphStats sb = ComputeStats(base);
  EXPECT_EQ(st.num_vertices, sb.num_vertices);
  // Trends roughly triple the coreset count (Table II: 127 -> 271).
  EXPECT_GT(st.num_coresets, sb.num_coresets);
  EXPECT_GT(st.num_coresets, 180u);
  EXPECT_LT(st.num_coresets, 400u);
}

TEST(DatasetsTest, UsflightLikeShape) {
  auto g = MakeUsflightLike(1).value();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 280u);
  // Table II: 4,030 edges, |Sc| = 70.
  EXPECT_GT(s.num_edges, 3000u);
  EXPECT_LT(s.num_edges, 5000u);
  EXPECT_GT(s.num_coresets, 40u);
  EXPECT_LT(s.num_coresets, 90u);
  // The planted USFlight pattern attributes must exist.
  EXPECT_NE(g.dict().Find("NbDepart-"),
            graph::AttributeDictionary::kNotFound);
  EXPECT_NE(g.dict().Find("NbDepart+"),
            graph::AttributeDictionary::kNotFound);
  EXPECT_NE(g.dict().Find("DelayArriv-"),
            graph::AttributeDictionary::kNotFound);
}

TEST(DatasetsTest, PokecLikeShape) {
  auto g = MakePokecLike(1, /*num_vertices=*/5000).value();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 5000u);
  EXPECT_GT(s.avg_degree, 5.0);  // dense friendship network
  EXPECT_GT(s.num_coresets, 300u);
  EXPECT_NE(g.dict().Find("rap"), graph::AttributeDictionary::kNotFound);
  EXPECT_NE(g.dict().Find("disko"), graph::AttributeDictionary::kNotFound);
}

TEST(DatasetsTest, CoraLikeShape) {
  auto g = MakeCoraLike(1).value();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 2708u);
  EXPECT_GT(s.num_edges, 2000u);
  EXPECT_GT(s.avg_attributes_per_vertex, 2.0);
}

TEST(DatasetsTest, CiteseerLikeShape) {
  auto g = MakeCiteseerLike(1).value();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 3327u);
  EXPECT_GT(s.num_edges, 1500u);
}

TEST(DatasetsTest, DeterministicInSeed) {
  auto g1 = MakeDblpLike(7).value();
  auto g2 = MakeDblpLike(7).value();
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(g1.num_attribute_values(), g2.num_attribute_values());
  auto g3 = MakeDblpLike(8).value();
  EXPECT_NE(g1.num_edges(), g3.num_edges());
}

}  // namespace
}  // namespace cspm::datasets
