// Tests for the engine facade: MiningSession build-mine-score-serialize,
// option translation, and the losslessness verification hook.
#include "engine/session.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "engine/scoring.h"
#include "graph/generators.h"
#include "testing_util.h"

namespace cspm::engine {
namespace {

using cspm::testing::PaperExampleGraph;

graph::AttributedGraph SmallRandomGraph(uint64_t seed) {
  Rng rng(seed);
  return graph::ErdosRenyi(120, 0.06, 12, 3, &rng).value();
}

TEST(MiningSession, MineProducesModelAndStats) {
  auto g = PaperExampleGraph();
  auto session_or = MiningSession::Create(g);
  ASSERT_TRUE(session_or.ok());
  MiningSession session = std::move(session_or).value();
  EXPECT_FALSE(session.has_model());

  ASSERT_TRUE(session.Mine().ok());
  ASSERT_TRUE(session.has_model());
  EXPECT_GT(session.model().astars.size(), 0u);
  EXPECT_GT(session.stats().initial_dl_bits, 0.0);
  EXPECT_LE(session.stats().final_dl_bits,
            session.stats().initial_dl_bits + 1e-9);
}

TEST(MiningSession, MineModelConvenienceMatchesSession) {
  auto g = SmallRandomGraph(3);
  auto direct = MineModel(g).value();
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  EXPECT_EQ(direct.astars.size(), session.model().astars.size());
  EXPECT_EQ(direct.stats.final_dl_bits, session.model().stats.final_dl_bits);
}

TEST(MiningSession, OptionsReachTheSearch) {
  auto g = SmallRandomGraph(7);
  MiningOptions basic;
  basic.strategy = Search::kBasic;
  basic.max_iterations = 1;
  auto model = MineModel(g, basic).value();
  EXPECT_LE(model.stats.iterations, 1u);
  // Iteration stats can be disabled.
  MiningOptions quiet;
  quiet.record_iteration_stats = false;
  EXPECT_TRUE(MineModel(g, quiet).value().stats.per_iteration.empty());
}

TEST(MiningSession, ScoreMatchesScoringFacade) {
  auto g = SmallRandomGraph(11);
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  for (uint32_t raw : {0u, 5u, 17u}) {
    const graph::VertexId v(raw);
    AttributeScores via_session = session.Score(v);
    AttributeScores via_facade = engine::ScoreAttributes(g, session.model(), v);
    EXPECT_EQ(via_session.raw, via_facade.raw);
    EXPECT_EQ(via_session.normalized, via_facade.normalized);
  }
}

TEST(MiningSession, SerializeRoundTrips) {
  auto g = SmallRandomGraph(13);
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  const std::string text = session.SerializeModel();
  ASSERT_FALSE(text.empty());

  auto other = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(other.DeserializeModel(text).ok());
  EXPECT_EQ(other.model().astars.size(), session.model().astars.size());
  // Scoring through the reloaded model agrees (up to the text format's
  // printed precision).
  const auto reloaded = other.Score(graph::VertexId(0)).normalized;
  const auto original = session.Score(graph::VertexId(0)).normalized;
  ASSERT_EQ(reloaded.size(), original.size());
  for (size_t i = 0; i < reloaded.size(); ++i) {
    EXPECT_NEAR(reloaded[i], original[i], 1e-6) << i;
  }
}

// Regression: doubles are emitted with max_digits10, so a text round trip
// is bit-exact — stats and code lengths used to drift at the 7th digit.
TEST(MiningSession, TextRoundTripIsBitExact) {
  auto g = SmallRandomGraph(17);
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());

  auto reloaded = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(reloaded.DeserializeModel(session.SerializeModel()).ok());

  EXPECT_EQ(reloaded.stats().initial_dl_bits, session.stats().initial_dl_bits);
  EXPECT_EQ(reloaded.stats().final_dl_bits, session.stats().final_dl_bits);
  EXPECT_EQ(reloaded.stats().iterations, session.stats().iterations);
  ASSERT_EQ(reloaded.model().astars.size(), session.model().astars.size());
  for (size_t i = 0; i < session.model().astars.size(); ++i) {
    EXPECT_EQ(reloaded.model().astars[i].code_length_bits,
              session.model().astars[i].code_length_bits)
        << i;
  }
  // Scores computed through the reloaded model are therefore bit-exact too.
  for (uint32_t raw : {0u, 3u, 50u}) {
    const graph::VertexId v(raw);
    EXPECT_EQ(reloaded.Score(v).raw, session.Score(v).raw);
  }
}

TEST(MiningSession, SaveModelReportsIOErrors) {
  auto g = PaperExampleGraph();
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  Status st = session.SaveModel("/nonexistent-dir/model.txt");
  ASSERT_FALSE(st.ok());
  // The path and the errno text both appear in the message.
  EXPECT_NE(st.message().find("/nonexistent-dir/model.txt"),
            std::string::npos);
  EXPECT_NE(st.message().find("No such file"), std::string::npos);
  EXPECT_FALSE(
      session.SaveModel("/nonexistent-dir/model.cspm").ok());  // binary too
  EXPECT_FALSE(session.LoadModel("/nonexistent-dir/model.txt").ok());
}

TEST(MiningSession, SaveAndLoadModelFile) {
  auto g = PaperExampleGraph();
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  const std::string path = ::testing::TempDir() + "cspm_engine_model.txt";
  ASSERT_TRUE(session.SaveModel(path).ok());

  auto other = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(other.LoadModel(path).ok());
  EXPECT_EQ(other.model().astars.size(), session.model().astars.size());
  std::remove(path.c_str());
}

TEST(MiningSession, VerifyLosslessRequiresKeptDatabase) {
  auto g = PaperExampleGraph();
  auto session = std::move(MiningSession::Create(g)).value();
  EXPECT_FALSE(session.VerifyLossless().ok());  // nothing mined yet
  ASSERT_TRUE(session.Mine().ok());
  EXPECT_FALSE(session.VerifyLossless().ok());  // database not kept

  MiningOptions keep;
  keep.keep_database = true;
  auto keeping = std::move(MiningSession::Create(g, keep)).value();
  ASSERT_TRUE(keeping.Mine().ok());
  EXPECT_TRUE(keeping.VerifyLossless().ok());
}

}  // namespace
}  // namespace cspm::engine
