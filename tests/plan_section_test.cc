// Tests for the mmap-native plan section (store format v3): the on-disk
// encode/validate round trip, bit-identity of mmap-view scores against a
// freshly compiled plan on the n=8000 serving stand-in, the registry's
// LRU plan cache (hits, misses, evictions, eviction-while-serving), and
// read-compatibility with a committed v2 store file produced by an older
// binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cspm/scoring_plan.h"
#include "datasets/synthetic.h"
#include "engine/model_registry.h"
#include "engine/session.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "store/model_store.h"
#include "store/plan_section.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace cspm {
namespace {

using store::ModelStore;
using store::StoredModel;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

graph::AttributedGraph SmallGraph(uint64_t seed = 7) {
  Rng rng(seed);
  auto g = graph::BarabasiAlbert(/*n=*/200, /*m=*/3, /*vocabulary=*/20,
                                 /*attrs_per_vertex=*/3, &rng);
  CSPM_CHECK(g.ok());
  return std::move(g).value();
}

core::CspmModel Mine(const graph::AttributedGraph& g) {
  engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  auto model = engine::MineModel(g, opts);
  CSPM_CHECK(model.ok());
  return std::move(model).value();
}

/// Exact (bitwise, via ==) score comparison over every vertex of `g`.
void ExpectBitIdenticalScores(const graph::AttributedGraph& g,
                              const core::ScoringPlan& a,
                              const core::ScoringPlan& b) {
  ASSERT_EQ(a.num_attribute_values(), b.num_attribute_values());
  std::vector<graph::AttrId> neighbourhood;
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    neighbourhood.clear();
    core::GatherNeighbourhoodAttrs(g, v, &neighbourhood);
    const core::AttributeScores sa = a.Score(neighbourhood);
    const core::AttributeScores sb = b.Score(neighbourhood);
    ASSERT_EQ(sa.raw.size(), sb.raw.size());
    for (size_t i = 0; i < sa.raw.size(); ++i) {
      // EXPECT_EQ on doubles is exact — the bit-identity contract.
      ASSERT_EQ(sa.raw[i], sb.raw[i])
          << "raw score diverged at vertex " << v.value() << " attr " << i;
      ASSERT_EQ(sa.normalized[i], sb.normalized[i])
          << "normalized score diverged at vertex " << v.value() << " attr "
          << i;
    }
  }
}

// --- encode / validate / view round trip ----------------------------------

TEST(PlanSection, EncodeValidateRoundTrip) {
  const graph::AttributedGraph g = SmallGraph();
  const core::CspmModel model = Mine(g);
  const core::ScoringPlan plan =
      core::ScoringPlan::Compile(model, g.num_attribute_values());

  const std::string section = store::EncodePlanSection(plan);
  ASSERT_GE(section.size(), store::kPlanSectionHeaderBytes);
  EXPECT_EQ(section.compare(0, 8, store::kPlanSectionMagic), 0);
  EXPECT_TRUE(store::ValidatePlanSection(section, /*verify_slab_crcs=*/false)
                  .ok());
  EXPECT_TRUE(store::ValidatePlanSection(section, /*verify_slab_crcs=*/true)
                  .ok());

  // Wrap the encoded bytes as a view (no mmap needed — the same code path
  // serves both) and check full equivalence.
  auto holder = std::make_shared<std::string>(section);
  auto view_or =
      store::PlanFromSectionBytes(holder->data(), holder->size(), holder);
  ASSERT_TRUE(view_or.ok()) << view_or.status().ToString();
  const core::ScoringPlan& view = **view_or;
  EXPECT_TRUE(view.is_view());
  EXPECT_FALSE(plan.is_view());
  EXPECT_EQ(view.num_stars(), plan.num_stars());
  EXPECT_TRUE(view.CheckInvariants().ok());
  ExpectBitIdenticalScores(g, plan, view);
}

TEST(PlanSection, ValidateRejectsTamperedBytes) {
  const graph::AttributedGraph g = SmallGraph();
  const core::ScoringPlan plan =
      core::ScoringPlan::Compile(Mine(g), g.num_attribute_values());
  std::string section = store::EncodePlanSection(plan);

  // Header flip: both tiers refuse.
  std::string bad = section;
  bad[13] ^= 0x01;
  EXPECT_FALSE(
      store::ValidatePlanSection(bad, /*verify_slab_crcs=*/false).ok());

  // Slab flip: the O(1) tier accepts, the fsck tier refuses.
  bad = section;
  bad[store::kPlanSectionHeaderBytes + 3] ^= 0x01;
  EXPECT_TRUE(
      store::ValidatePlanSection(bad, /*verify_slab_crcs=*/false).ok());
  EXPECT_FALSE(
      store::ValidatePlanSection(bad, /*verify_slab_crcs=*/true).ok());

  // Truncation: the O(1) tier refuses (geometry escapes the section).
  bad = section.substr(0, section.size() - 1);
  EXPECT_FALSE(
      store::ValidatePlanSection(bad, /*verify_slab_crcs=*/false).ok());
}

// --- mmap view through the store, n=8000 stand-in -------------------------

TEST(PlanSection, MmapViewBitIdenticalOnServingStandIn) {
  const graph::AttributedGraph g = datasets::MakePokecLike(1, 8000).value();
  const core::CspmModel model = Mine(g);
  const core::ScoringPlan compiled =
      core::ScoringPlan::Compile(model, g.num_attribute_values());

  const std::string path = TempPath("plan_section_8000.cspm");
  auto store = ModelStore::Create(path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put("standin", {model, g.dict(), std::nullopt}).ok());

  // Reopen from the committed image, the way a serving process would.
  auto reopened = ModelStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  auto plan_or = reopened->OpenPlan("standin");
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  const std::shared_ptr<const core::ScoringPlan> view = *plan_or;
  EXPECT_TRUE(view->is_view());
  EXPECT_TRUE(view->CheckInvariants().ok());
  ExpectBitIdenticalScores(g, compiled, *view);
  std::remove(path.c_str());
}

// --- registry LRU plan cache ----------------------------------------------

TEST(PlanCache, HitsMissesEvictionsAndReopen) {
  const std::string path = TempPath("plan_cache_lru.cspm");
  const graph::AttributedGraph g = SmallGraph();
  const core::CspmModel model = Mine(g);
  {
    auto store = ModelStore::Create(path);
    ASSERT_TRUE(store.ok());
    for (const char* name : {"a", "b", "c"}) {
      ASSERT_TRUE(store->Put(name, {model, g.dict(), std::nullopt}).ok());
    }
  }
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok());

  obs::Counter* hits = obs::GetCounter("registry.plan_cache.hits");
  obs::Counter* misses = obs::GetCounter("registry.plan_cache.misses");
  obs::Counter* evictions = obs::GetCounter("registry.plan_cache.evictions");
  const uint64_t hits0 = hits->Value();
  const uint64_t misses0 = misses->Value();
  const uint64_t evictions0 = evictions->Value();
#ifdef CSPM_OBS_OFF
  (void)hits0;
  (void)misses0;
  (void)evictions0;
#endif

  engine::ModelRegistry registry;
  auto a1 = registry.OpenPlan(*store, "a");
  ASSERT_TRUE(a1.ok());
#ifndef CSPM_OBS_OFF
  EXPECT_EQ(misses->Value(), misses0 + 1);
#endif
  const size_t plan_bytes = (*a1)->ApproxBytes();
  ASSERT_GT(plan_bytes, 0u);
  EXPECT_EQ(registry.plan_cache_resident_bytes(), plan_bytes);

  // Second open of the same model: a hit, and the very same plan object.
  auto a2 = registry.OpenPlan(*store, "a");
  ASSERT_TRUE(a2.ok());
#ifndef CSPM_OBS_OFF
  EXPECT_EQ(hits->Value(), hits0 + 1);
#endif
  EXPECT_EQ(a1->get(), a2->get());

  // Capacity for one plan only: opening "b" evicts "a".
  registry.SetPlanCacheCapacity(plan_bytes);
  auto b = registry.OpenPlan(*store, "b");
  ASSERT_TRUE(b.ok());
#ifndef CSPM_OBS_OFF
  EXPECT_EQ(evictions->Value(), evictions0 + 1);
#endif
  EXPECT_EQ(registry.plan_cache_resident_bytes(), plan_bytes);

  // Eviction-while-serving: the held handle still scores after its cache
  // entry (the only other owner of the mapping) is gone.
  std::vector<graph::AttrId> neighbourhood;
  core::GatherNeighbourhoodAttrs(g, graph::VertexId(0), &neighbourhood);
  const core::AttributeScores before = (*a1)->Score(neighbourhood);

  // Evict-then-reopen: "a" misses again and the fresh mapping scores
  // identically.
  auto a3 = registry.OpenPlan(*store, "a");
  ASSERT_TRUE(a3.ok());
#ifndef CSPM_OBS_OFF
  EXPECT_EQ(misses->Value(), misses0 + 3);  // a, b, a again
#endif
  const core::AttributeScores after = (*a3)->Score(neighbourhood);
  ASSERT_EQ(before.normalized.size(), after.normalized.size());
  for (size_t i = 0; i < before.normalized.size(); ++i) {
    EXPECT_EQ(before.normalized[i], after.normalized[i]);
  }

  // Invalidation drops the entry without counting as cache pressure.
  registry.InvalidateCachedPlan(store->path(), "a");
  auto a4 = registry.OpenPlan(*store, "a");
  ASSERT_TRUE(a4.ok());
  EXPECT_NE(a3->get(), a4->get());
#ifndef CSPM_OBS_OFF
  EXPECT_EQ(misses->Value(), misses0 + 4);
#endif
  std::remove(path.c_str());
}

// --- v2 read-compatibility -------------------------------------------------

/// Copies the committed v2 fixture (written by a pre-v3 binary: linear
/// catalog chain, no plan sections) into the temp dir.
std::string CopyV2Fixture(const std::string& name) {
  const std::string src = std::string(CSPM_TEST_DATA_DIR) + "/v2_store.cspm";
  const std::string dst = TempPath(name);
  std::ifstream in(src, std::ios::binary);
  CSPM_CHECK(in.good());
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  CSPM_CHECK(out.good());
  return dst;
}

TEST(V2Compat, OpensReadsAndServesWithoutPlanSection) {
  const std::string path = CopyV2Fixture("v2_compat_read.cspm");
  auto store = ModelStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->size(), 1u);
  EXPECT_TRUE(store->Contains("v2model"));
  EXPECT_TRUE(store->Fsck().ok());

  auto stored = store->Get("v2model");
  ASSERT_TRUE(stored.ok());
  ASSERT_TRUE(stored->graph.has_value());
  EXPECT_EQ(store->List()[0].plan_bytes, 0u);

  // The WAL written by the old binary is still replayable.
  auto wal = store->ReadWal("v2model");
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->deltas.size(), 1u);
  EXPECT_FALSE(wal->truncated);

  // No plan section yet: the direct open refuses with the upgrade hint,
  // and the registry falls back to decode + compile.
  auto direct = store->OpenPlan("v2model");
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("no plan section"),
            std::string::npos)
      << direct.status().ToString();
  engine::ModelRegistry registry;
  auto fallback = registry.OpenPlan(*store, "v2model");
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE((*fallback)->is_view());
  std::remove(path.c_str());
}

TEST(V2Compat, FirstMutationUpgradesToV3InPlace) {
  const std::string path = CopyV2Fixture("v2_compat_upgrade.cspm");
  core::CspmModel model;
  graph::AttributedGraph g = [&] {
    auto store = ModelStore::Open(path);
    CSPM_CHECK(store.ok());
    auto stored = store->Get("v2model");
    CSPM_CHECK(stored.ok());
    model = stored->model;
    graph::AttributedGraph graph = std::move(*stored->graph);

    // Scores of the record decoded by this (v3) binary must match what
    // the v2 binary persisted — then re-Put upgrades the file in place.
    CSPM_CHECK(store->Put("v2model", {model, graph.dict(), graph}).ok());
    return graph;
  }();

  auto upgraded = ModelStore::Open(path);
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  EXPECT_TRUE(upgraded->Fsck().ok());
  ASSERT_FALSE(upgraded->List().empty());
  EXPECT_GT(upgraded->List()[0].plan_bytes, 0u);
  // Put compacts the WAL.
  auto wal = upgraded->ReadWal("v2model");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->deltas.empty());

  auto plan_or = upgraded->OpenPlan("v2model");
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  EXPECT_TRUE((*plan_or)->is_view());
  const core::ScoringPlan compiled =
      core::ScoringPlan::Compile(model, g.num_attribute_values());
  ExpectBitIdenticalScores(g, compiled, **plan_or);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cspm
