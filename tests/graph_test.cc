// Tests for the attributed-graph substrate: builder validation, CSR
// accessors, connectivity, I/O round-trips, generators and statistics.
#include "graph/attributed_graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "testing_util.h"

namespace cspm::graph {
namespace {

TEST(AttributeDictionaryTest, InternAndFind) {
  AttributeDictionary dict;
  AttrId a = dict.Intern("alpha");
  AttrId b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);  // idempotent
  EXPECT_EQ(dict.Find("beta"), b);
  EXPECT_EQ(dict.Find("gamma"), AttributeDictionary::kNotFound);
  EXPECT_EQ(dict.Name(a), "alpha");
  EXPECT_EQ(dict.size(), 2u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b;
  b.AddVertex({"x"});
  Status st = b.AddEdge(VertexId(0), VertexId(0));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsUnknownEndpoints) {
  GraphBuilder b;
  b.AddVertex({"x"});
  EXPECT_FALSE(b.AddEdge(VertexId(0), VertexId(5)).ok());
}

TEST(GraphBuilderTest, RejectsEmptyGraph) {
  GraphBuilder b;
  EXPECT_FALSE(std::move(b).Build().status().ok());
}

TEST(GraphBuilderTest, DeduplicatesEdgesAndAttributes) {
  GraphBuilder b;
  b.AddVertex({"x", "x", "y"});
  b.AddVertex({"z"});
  ASSERT_TRUE(b.AddEdge(VertexId(0), VertexId(1)).ok());
  ASSERT_TRUE(b.AddEdge(VertexId(1), VertexId(0)).ok());  // same undirected edge
  auto g = std::move(b).Build().value();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Attributes(VertexId(0)).size(), 2u);
}

TEST(GraphBuilderTest, AddVertexAttributeKeepsSorted) {
  GraphBuilder b;
  b.AddVertex({"m"});
  ASSERT_TRUE(b.AddVertexAttribute(VertexId(0), "a").ok());
  ASSERT_TRUE(b.AddVertexAttribute(VertexId(0), "z").ok());
  ASSERT_TRUE(b.AddVertexAttribute(VertexId(0), "a").ok());  // duplicate ignored
  b.AddVertex({});
  ASSERT_TRUE(b.AddEdge(VertexId(0), VertexId(1)).ok());
  auto g = std::move(b).Build().value();
  auto attrs = g.Attributes(VertexId(0));
  EXPECT_EQ(attrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(attrs.begin(), attrs.end()));
}

TEST(AttributedGraphTest, PaperExampleAccessors) {
  auto g = cspm::testing::PaperExampleGraph();
  EXPECT_EQ(g.num_vertices().value(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.num_attribute_values(), 3u);
  EXPECT_EQ(g.total_attribute_occurrences(), 7u);

  AttrId a = g.dict().Find("a");
  EXPECT_EQ(g.AttributeFrequency(a), 3u);
  auto with_a = g.VerticesWithAttribute(a);
  EXPECT_EQ(std::vector<VertexId>(with_a.begin(), with_a.end()),
            (std::vector<VertexId>{VertexId(0), VertexId(1), VertexId(4)}));

  EXPECT_TRUE(g.HasEdge(VertexId(0), VertexId(1)));
  EXPECT_TRUE(g.HasEdge(VertexId(1), VertexId(0)));
  EXPECT_FALSE(g.HasEdge(VertexId(1), VertexId(2)));
  EXPECT_TRUE(g.HasAttribute(VertexId(1), a));
  EXPECT_FALSE(g.HasAttribute(VertexId(2), a));
  EXPECT_EQ(g.Degree(VertexId(0)), 3u);
}

TEST(AttributedGraphTest, NeighborsSorted) {
  auto g = cspm::testing::PaperExampleGraph();
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    auto nbrs = g.Neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(AttributedGraphTest, ConnectivityDetection) {
  auto g = cspm::testing::PaperExampleGraph();
  EXPECT_TRUE(g.IsConnected());

  GraphBuilder b;
  b.AddVertex({"x"});
  b.AddVertex({"y"});
  b.AddVertex({"z"});
  ASSERT_TRUE(b.AddEdge(VertexId(0), VertexId(1)).ok());
  auto g2 = std::move(b).Build().value();
  EXPECT_FALSE(g2.IsConnected());
}

TEST(AttributedGraphTest, BuildRequireConnectedFails) {
  GraphBuilder b;
  b.AddVertex({"x"});
  b.AddVertex({"y"});
  auto st = std::move(b).Build(/*require_connected=*/true).status();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(AttributedGraphTest, DefaultConstructedIsEmpty) {
  AttributedGraph g;
  EXPECT_EQ(g.num_vertices().value(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphIoTest, RoundTripPreservesEverything) {
  auto g = cspm::testing::PaperExampleGraph();
  std::string text = ToText(g);
  auto g2_or = FromText(text);
  ASSERT_TRUE(g2_or.status().ok()) << g2_or.status().ToString();
  const auto& g2 = *g2_or;
  ASSERT_EQ(g2.num_vertices(), g.num_vertices());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    auto a1 = g.Attributes(v);
    auto a2 = g2.Attributes(v);
    ASSERT_EQ(a1.size(), a2.size());
    for (size_t i = 0; i < a1.size(); ++i) {
      EXPECT_EQ(g.dict().Name(a1[i]), g2.dict().Name(a2[i]));
    }
    auto n1 = g.Neighbors(v);
    auto n2 = g2.Neighbors(v);
    EXPECT_EQ(std::vector<VertexId>(n1.begin(), n1.end()),
              std::vector<VertexId>(n2.begin(), n2.end()));
  }
}

TEST(GraphIoTest, FileRoundTrip) {
  auto g = cspm::testing::PaperExampleGraph();
  const std::string path = ::testing::TempDir() + "/cspm_io_test.graph";
  ASSERT_TRUE(SaveToFile(g, path).ok());
  auto g2_or = LoadFromFile(path);
  ASSERT_TRUE(g2_or.status().ok());
  EXPECT_EQ(g2_or->num_vertices(), g.num_vertices());
}

TEST(GraphIoTest, ParseErrors) {
  EXPECT_FALSE(FromText("v a\nq nonsense\n").status().ok());
  EXPECT_FALSE(FromText("v a\ne 0\n").status().ok());
  EXPECT_FALSE(FromText("v a\ne 0 zero\n").status().ok());
  EXPECT_FALSE(FromText("v a\nv b\ne 0 0\n").status().ok());  // self loop
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  auto g_or = FromText("# header\n\nv a b\nv c\n# mid\ne 0 1\n");
  ASSERT_TRUE(g_or.status().ok());
  EXPECT_EQ(g_or->num_vertices().value(), 2u);
  EXPECT_EQ(g_or->num_edges(), 1u);
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  Rng rng1(5);
  Rng rng2(5);
  auto g1 = ErdosRenyi(50, 0.1, 8, 2, &rng1).value();
  auto g2 = ErdosRenyi(50, 0.1, 8, 2, &rng2).value();
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(ToText(g1), ToText(g2));
}

TEST(GeneratorsTest, ErdosRenyiEdgeCountNearExpectation) {
  Rng rng(9);
  const uint32_t n = 200;
  const double p = 0.05;
  auto g = ErdosRenyi(n, p, 8, 2, &rng).value();
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              5.0 * std::sqrt(expected));
}

TEST(GeneratorsTest, ErdosRenyiValidation) {
  Rng rng(1);
  EXPECT_FALSE(ErdosRenyi(0, 0.1, 8, 2, &rng).status().ok());
  EXPECT_FALSE(ErdosRenyi(10, 1.5, 8, 2, &rng).status().ok());
}

TEST(GeneratorsTest, BarabasiAlbertShape) {
  Rng rng(3);
  auto g = BarabasiAlbert(300, 3, 10, 2, &rng).value();
  EXPECT_EQ(g.num_vertices().value(), 300u);
  // m edges per vertex after the seed clique.
  EXPECT_GE(g.num_edges(), 3u * (300 - 4));
  EXPECT_TRUE(g.IsConnected());
  // Preferential attachment should produce a hub.
  uint32_t max_deg = 0;
  for (VertexId v(0); v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.Degree(v));
  }
  EXPECT_GT(max_deg, 15u);
}

TEST(GeneratorsTest, PlantedAStarGraphContainsRuleAttributes) {
  PlantedGraphOptions options;
  options.num_vertices = 150;
  options.seed = 8;
  auto g = PlantedAStarGraph(options, {{{"core_x"}, {"leaf_y"}, 1.0}})
               .value();
  AttrId core = g.dict().Find("core_x");
  AttrId leaf = g.dict().Find("leaf_y");
  ASSERT_NE(core, AttributeDictionary::kNotFound);
  ASSERT_NE(leaf, AttributeDictionary::kNotFound);
  // Every core vertex with a neighbour must see leaf_y next door.
  for (VertexId v : g.VerticesWithAttribute(core)) {
    if (g.Degree(v) == 0) continue;
    bool found = false;
    for (VertexId w : g.Neighbors(v)) {
      if (g.HasAttribute(w, leaf)) found = true;
    }
    EXPECT_TRUE(found) << "core vertex " << v;
  }
}

TEST(GeneratorsTest, CommunityGraphHomophily) {
  CommunityGraphOptions options;
  options.num_vertices = 400;
  options.num_communities = 4;
  options.seed = 12;
  auto cg = MakeCommunityGraph(options).value();
  EXPECT_EQ(cg.community.size(), 400u);
  // Count intra vs inter edges: homophily demands a majority intra.
  uint64_t intra = 0;
  uint64_t inter = 0;
  for (VertexId v(0); v < cg.graph.num_vertices(); ++v) {
    for (VertexId w : cg.graph.Neighbors(v)) {
      if (w < v) continue;
      if (cg.community[v.index()] == cg.community[w.index()]) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  EXPECT_GT(intra, inter);
}

TEST(StatsTest, PaperExampleStats) {
  auto g = cspm::testing::PaperExampleGraph();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_vertices, 5u);
  EXPECT_EQ(s.num_edges, 5u);
  EXPECT_EQ(s.num_attribute_values, 3u);
  EXPECT_EQ(s.num_coresets, 3u);
  EXPECT_NEAR(s.avg_attributes_per_vertex, 7.0 / 5.0, 1e-12);
  EXPECT_NEAR(s.avg_degree, 2.0, 1e-12);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_FALSE(StatsToString(s).empty());
}

}  // namespace
}  // namespace cspm::graph
