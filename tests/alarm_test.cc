// Tests for the alarm-correlation pipeline: rule library, simulator,
// window graph, ACOR baseline, a-star splitting and coverage@K (Fig. 8
// machinery).
#include <gtest/gtest.h>

#include <set>

#include "alarm/acor.h"
#include "alarm/rules.h"
#include "alarm/simulator.h"
#include "alarm/triage.h"
#include "alarm/window_graph.h"
#include "cspm/miner.h"

namespace cspm::alarm {
namespace {

TEST(RuleLibraryTest, GenerateShape) {
  Rng rng(1);
  RuleLibrary lib = RuleLibrary::Generate(11, 8, 14, 300, &rng);
  EXPECT_EQ(lib.rules.size(), 11u);
  std::set<AlarmType> causes;
  for (const auto& r : lib.rules) {
    causes.insert(r.cause);
    EXPECT_GE(r.derivatives.size(), 8u);
    EXPECT_LE(r.derivatives.size(), 14u);
    for (AlarmType d : r.derivatives) {
      EXPECT_NE(d, r.cause);
      EXPECT_LT(d, 300u);
    }
  }
  EXPECT_EQ(causes.size(), 11u);  // disjoint causes
}

TEST(RuleLibraryTest, PairDecomposition) {
  RuleLibrary lib;
  lib.rules = {{0, {1, 2}}, {3, {1}}};
  auto pairs = lib.PairRules();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (PairRule{0, 1}));
  EXPECT_EQ(pairs[1], (PairRule{0, 2}));
  EXPECT_EQ(pairs[2], (PairRule{3, 1}));
}

TEST(RuleLibraryTest, PaperScale121Pairs) {
  // 11 rules with ~11 derivatives each decompose into ~121 pair rules.
  Rng rng(2);
  RuleLibrary lib = RuleLibrary::Generate(11, 11, 11, 300, &rng);
  EXPECT_EQ(lib.PairRules().size(), 121u);
}

TEST(SimulatorTest, DeterministicAndSorted) {
  Rng rng(3);
  RuleLibrary lib = RuleLibrary::Generate(5, 3, 6, 60, &rng);
  SimulationOptions options;
  options.num_devices = 50;
  options.num_alarm_types = 60;
  options.duration_minutes = 600;
  options.cause_incidents = 300;
  options.seed = 5;
  auto d1 = SimulateAlarms(options, lib).value();
  auto d2 = SimulateAlarms(options, lib).value();
  EXPECT_EQ(d1.events.size(), d2.events.size());
  for (size_t i = 1; i < d1.events.size(); ++i) {
    EXPECT_LE(d1.events[i - 1].time_minutes, d1.events[i].time_minutes);
  }
  EXPECT_FALSE(d1.events.empty());
  for (const auto& ev : d1.events) {
    EXPECT_LT(ev.device, options.num_devices);
    EXPECT_LT(ev.type, options.num_alarm_types);
    EXPECT_GE(ev.time_minutes, 0.0);
  }
}

TEST(SimulatorTest, CausalCascadesPresent) {
  // With background noise off, every event is either a cause or a
  // derivative of a planted rule.
  Rng rng(7);
  RuleLibrary lib = RuleLibrary::Generate(3, 2, 4, 30, &rng);
  SimulationOptions options;
  options.num_devices = 30;
  options.num_alarm_types = 30;
  options.background_alarms_per_device = 0.0;
  options.cause_incidents = 200;
  options.seed = 9;
  auto data = SimulateAlarms(options, lib).value();
  std::set<AlarmType> allowed;
  for (const auto& r : lib.rules) {
    allowed.insert(r.cause);
    allowed.insert(r.derivatives.begin(), r.derivatives.end());
  }
  for (const auto& ev : data.events) {
    EXPECT_TRUE(allowed.count(ev.type)) << "type " << ev.type;
  }
}

TEST(SimulatorTest, Validation) {
  RuleLibrary lib;
  SimulationOptions options;
  options.num_devices = 1;
  EXPECT_FALSE(SimulateAlarms(options, lib).ok());
  options.num_devices = 10;
  options.num_alarm_types = 0;
  EXPECT_FALSE(SimulateAlarms(options, lib).ok());
}

TEST(WindowGraphTest, StructureMatchesBuckets) {
  AlarmDataset data;
  data.num_devices = 3;
  data.num_types = 5;
  data.adjacency = {{1}, {0, 2}, {1}};
  // Window 0: devices 0 and 1 alarm; window 1: device 2 alarms alone.
  data.events = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 3, 3.0}, {2, 4, 12.0}};
  auto g = BuildWindowGraph(data, /*window_minutes=*/10.0).value();
  EXPECT_EQ(g.num_vertices().value(), 3u);  // (w0,d0), (w0,d1), (w1,d2)
  EXPECT_EQ(g.num_edges(), 1u);     // d0-d1 within window 0
  // Vertices carry the right attribute names.
  EXPECT_NE(g.dict().Find("T1"), graph::AttributeDictionary::kNotFound);
}

TEST(WindowGraphTest, AlarmNameRoundTrip) {
  EXPECT_EQ(AlarmAttributeName(17), "T17");
  EXPECT_EQ(DecodeAlarmName("T17").value(), 17u);
  EXPECT_FALSE(DecodeAlarmName("X17").ok());
  EXPECT_FALSE(DecodeAlarmName("T17b").ok());
  EXPECT_FALSE(DecodeAlarmName("").ok());
}

TEST(WindowGraphTest, RejectsBadWindow) {
  AlarmDataset data;
  data.num_devices = 1;
  data.num_types = 1;
  data.adjacency = {{}};
  EXPECT_FALSE(BuildWindowGraph(data, 0.0).ok());
}

class AlarmPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    lib_ = RuleLibrary::Generate(6, 4, 8, 80, &rng);
    SimulationOptions options;
    options.num_devices = 80;
    options.num_alarm_types = 80;
    options.duration_minutes = 2000;
    options.background_alarms_per_device = 6;
    options.cause_incidents = 1500;
    options.seed = 13;
    data_ = SimulateAlarms(options, lib_).value();
  }

  RuleLibrary lib_;
  AlarmDataset data_;
};

TEST_F(AlarmPipelineTest, AcorFindsPlantedPairs) {
  AcorOptions options;
  auto ranked = RunAcor(data_, options);
  ASSERT_FALSE(ranked.empty());
  auto valid = lib_.PairRules();
  auto coverage = CoverageAtK(ranked, valid, {50, 200, ranked.size()});
  // Coverage grows with K and eventually captures a decent share.
  EXPECT_LE(coverage[0], coverage[1] + 1e-12);
  EXPECT_LE(coverage[1], coverage[2] + 1e-12);
  EXPECT_GT(coverage[2], 0.5);
}

TEST_F(AlarmPipelineTest, CspmPipelineProducesRankedPairs) {
  auto wg = BuildWindowGraph(data_, 5.0).value();
  auto model = core::CspmMiner(core::CspmOptions{}).Mine(wg).value();
  auto ranked = SplitAStarsToPairs(model, wg.dict());
  ASSERT_FALSE(ranked.empty());
  // Scores sorted descending.
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  auto valid = lib_.PairRules();
  auto coverage = CoverageAtK(ranked, valid, {ranked.size()});
  EXPECT_GT(coverage[0], 0.3);
}

TEST_F(AlarmPipelineTest, CspmBeatsAcorInMidRange) {
  // The Fig. 8 claim: CSPM's valid-rule coverage dominates ACOR's in the
  // mid range and saturates earlier (systematic MDL ranking vs per-pair
  // scores that misjudge some cause directions).
  auto wg = BuildWindowGraph(data_, 5.0).value();
  auto model = core::CspmMiner(core::CspmOptions{}).Mine(wg).value();
  auto cspm_ranked = SplitAStarsToPairs(model, wg.dict());
  auto acor_ranked = RunAcor(data_, {});
  auto valid = lib_.PairRules();
  const size_t k = 4 * valid.size();
  auto c1 = CoverageAtK(cspm_ranked, valid, {k});
  auto c2 = CoverageAtK(acor_ranked, valid, {k});
  EXPECT_GE(c1[0], c2[0]);
  EXPECT_GT(c1[0], 0.8);
  // Both eventually recover every valid rule (the curves end at 1.0).
  auto full1 = CoverageAtK(cspm_ranked, valid, {cspm_ranked.size()});
  auto full2 = CoverageAtK(acor_ranked, valid, {acor_ranked.size()});
  EXPECT_NEAR(full1[0], 1.0, 1e-9);
  EXPECT_NEAR(full2[0], 1.0, 1e-9);
}

TEST_F(AlarmPipelineTest, TriageRanksHiddenAlarmsDeterministically) {
  auto wg = BuildWindowGraph(data_, 5.0).value();
  auto model = core::CspmMiner(core::CspmOptions{}).Mine(wg).value();

  TriageOptions options;
  options.top_k = 3;
  auto serial = TriageWindows(wg, model, options).value();
  ASSERT_FALSE(serial.empty());
  for (const auto& wt : serial) {
    ASSERT_LE(wt.suspected.size(), options.top_k);
    ASSERT_FALSE(wt.suspected.empty());
    for (size_t i = 0; i < wt.suspected.size(); ++i) {
      const auto& s = wt.suspected[i];
      EXPECT_GT(s.score, 0.0);
      EXPECT_LE(s.score, 1.0);
      if (i > 0) {
        EXPECT_GE(wt.suspected[i - 1].score, s.score);
      }
      // A suspect is a hidden alarm: never one already in the window.
      const graph::AttrId a = wg.dict().Find(AlarmAttributeName(s.type));
      ASSERT_NE(a, graph::AttributeDictionary::kNotFound);
      EXPECT_FALSE(wg.HasAttribute(wt.window, a));
    }
  }

  // Sharded triage is identical to serial, at 4 and at auto threads.
  for (const uint32_t threads : {4u, 0u}) {
    options.num_threads = threads;
    auto sharded = TriageWindows(wg, model, options).value();
    ASSERT_EQ(sharded.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(sharded[i].window, serial[i].window);
      ASSERT_EQ(sharded[i].suspected.size(), serial[i].suspected.size());
      for (size_t j = 0; j < serial[i].suspected.size(); ++j) {
        EXPECT_EQ(sharded[i].suspected[j].type, serial[i].suspected[j].type);
        EXPECT_EQ(sharded[i].suspected[j].score,
                  serial[i].suspected[j].score);
      }
    }
  }

  // min_score filters: a high bar keeps only high-confidence suspects.
  options.num_threads = 1;
  options.min_score = 0.9;
  auto filtered = TriageWindows(wg, model, options).value();
  EXPECT_LE(filtered.size(), serial.size());
  for (const auto& wt : filtered) {
    for (const auto& s : wt.suspected) EXPECT_GE(s.score, 0.9);
  }
}

TEST(CoverageTest, HandComputed) {
  std::vector<RankedPair> ranked = {
      {0, 1, 0.9}, {5, 6, 0.8}, {0, 2, 0.7}, {7, 8, 0.6}};
  std::vector<PairRule> valid = {{0, 1}, {0, 2}, {3, 4}};
  auto cov = CoverageAtK(ranked, valid, {1, 2, 3, 4});
  EXPECT_NEAR(cov[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov[2], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov[3], 2.0 / 3.0, 1e-12);
}

TEST(CoverageTest, EmptyValidSetIsZero) {
  std::vector<RankedPair> ranked = {{0, 1, 0.9}};
  auto cov = CoverageAtK(ranked, {}, {1});
  EXPECT_DOUBLE_EQ(cov[0], 0.0);
}

}  // namespace
}  // namespace cspm::alarm
