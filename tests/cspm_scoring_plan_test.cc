// Tests for the compiled ScoringPlan: bit-identical to the legacy
// Algorithm 5 scorer for every vertex and every value, including the
// edge cases locked in by cspm_scoring_test.cc.
#include "cspm/scoring_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cspm/miner.h"
#include "cspm/scoring.h"
#include "graph/generators.h"
#include "testing_util.h"
#include "util/rng.h"

namespace cspm::core {
namespace {

/// Builds an AttrId list from raw values (strong ids ban implicit braces).
std::vector<AttrId> Ids(std::initializer_list<uint32_t> raw) {
  std::vector<AttrId> out;
  for (uint32_t a : raw) out.push_back(AttrId(a));
  return out;
}

CspmModel HandModel() {
  CspmModel model;
  AStar s1;
  s1.core_values = Ids({0});
  s1.leaf_values = Ids({1, 2});
  s1.code_length_bits = 2.0;
  AStar s2;
  s2.core_values = Ids({3});
  s2.leaf_values = Ids({4});
  s2.code_length_bits = 5.0;
  AStar empty;  // compiled out: no leafset, never contributes evidence
  empty.core_values = Ids({5});
  empty.code_length_bits = 1.0;
  model.astars = {s1, s2, empty};
  return model;
}

/// EXPECT_EQ over both score vectors (bit-identical incl. -inf, never NEAR).
void ExpectSameScores(const AttributeScores& plan_scores,
                      const AttributeScores& legacy) {
  EXPECT_EQ(plan_scores.raw, legacy.raw);
  EXPECT_EQ(plan_scores.normalized, legacy.normalized);
}

TEST(ScoringPlanTest, CompilesOutEmptyLeafsets) {
  ScoringPlan plan = ScoringPlan::Compile(HandModel(), 6);
  EXPECT_EQ(plan.num_stars(), 2u);
  EXPECT_EQ(plan.num_attribute_values(), 6u);
  EXPECT_GT(plan.memory_bytes(), 0u);
}

TEST(ScoringPlanTest, MatchesLegacyOnHandModelNeighbourhoods) {
  CspmModel model = HandModel();
  ScoringPlan plan = ScoringPlan::Compile(model, 6);
  const std::vector<std::vector<AttrId>> neighbourhoods = {
      Ids({}),                 // empty: no evidence anywhere
      Ids({1, 2}),             // full similarity for s1
      Ids({1}),                // partial similarity
      Ids({5}),                // no overlap
      Ids({1, 1, 1}),          // duplicates count once
      Ids({1, 2, 6, 1000}),    // out-of-range ids ignored
      Ids({4, 2, 1}),          // unsorted
      Ids({0, 1, 2, 3, 4, 5})  // everything
  };
  for (const auto& n : neighbourhoods) {
    ExpectSameScores(plan.Score(n),
                     ScoreAttributesWithNeighbourhood(6, model, n));
  }
}

TEST(ScoringPlanTest, MatchesLegacyAtExactSimilarityThreshold) {
  CspmModel model = HandModel();
  ScoringPlan plan = ScoringPlan::Compile(model, 6);
  const std::vector<AttrId> neighbourhood = Ids({1});
  ScoringOptions options;
  options.min_similarity = 0.5;  // similarity of {1} vs {1,2} is exactly 0.5
  ExpectSameScores(
      plan.Score(neighbourhood, options),
      ScoreAttributesWithNeighbourhood(6, model, neighbourhood, options));
  options.min_similarity = std::nextafter(0.5, 1.0);
  ExpectSameScores(
      plan.Score(neighbourhood, options),
      ScoreAttributesWithNeighbourhood(6, model, neighbourhood, options));
}

TEST(ScoringPlanTest, ScratchAndBuffersAreReusableAcrossCalls) {
  CspmModel model = HandModel();
  ScoringPlan plan = ScoringPlan::Compile(model, 6);
  ScoringScratch scratch;
  plan.PrepareScratch(&scratch);
  AttributeScores out;
  // Alternate between evidence-rich and empty neighbourhoods: stale state
  // from one call must never leak into the next.
  const std::vector<std::vector<AttrId>> sequence = {
      Ids({1, 2}), Ids({}), Ids({4}), Ids({1}), Ids({1, 2, 4}), Ids({})};
  for (const auto& n : sequence) {
    plan.ScoreInto(n, ScoringOptions{}, &scratch, &out);
    ExpectSameScores(out, ScoreAttributesWithNeighbourhood(6, model, n));
  }
}

// The tentpole regression: on mined models over random graphs, the plan
// reproduces the legacy per-vertex scorer bit-for-bit on every vertex and
// every attribute value (neighbourhoods fed raw, not deduplicated).
TEST(ScoringPlanTest, MinedModelMatchesLegacyOnEveryVertex) {
  for (const uint64_t seed : {3u, 17u}) {
    Rng rng(seed);
    auto g = graph::ErdosRenyi(200, 0.04, 18, 3, &rng).value();
    auto model = CspmMiner(CspmOptions{}).Mine(g).value();
    ScoringPlan plan = ScoringPlan::Compile(model, g.num_attribute_values());
    ScoringScratch scratch;
    plan.PrepareScratch(&scratch);
    AttributeScores out;
    std::vector<AttrId> neighbourhood;
    for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
      neighbourhood.clear();
      for (graph::VertexId w : g.Neighbors(v)) {
        const auto attrs = g.Attributes(w);
        neighbourhood.insert(neighbourhood.end(), attrs.begin(), attrs.end());
      }
      plan.ScoreInto(neighbourhood, ScoringOptions{}, &scratch, &out);
      const AttributeScores legacy = ScoreAttributes(g, model, v);
      ASSERT_EQ(out.raw.size(), legacy.raw.size());
      for (size_t i = 0; i < legacy.raw.size(); ++i) {
        ASSERT_EQ(out.raw[i], legacy.raw[i]) << "seed=" << seed << " v=" << v
                                             << " attr=" << i;
        ASSERT_EQ(out.normalized[i], legacy.normalized[i])
            << "seed=" << seed << " v=" << v << " attr=" << i;
      }
    }
  }
}

TEST(ScoringPlanTest, PaperExampleMatchesLegacy) {
  auto g = cspm::testing::PaperExampleGraph();
  auto model = CspmMiner(CspmOptions{}).Mine(g).value();
  ScoringPlan plan = ScoringPlan::Compile(model, g.num_attribute_values());
  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    std::vector<AttrId> neighbourhood;
    for (graph::VertexId w : g.Neighbors(v)) {
      const auto attrs = g.Attributes(w);
      neighbourhood.insert(neighbourhood.end(), attrs.begin(), attrs.end());
    }
    ExpectSameScores(plan.Score(neighbourhood), ScoreAttributes(g, model, v));
  }
}

}  // namespace
}  // namespace cspm::core
