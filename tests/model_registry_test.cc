// Tests for engine::ModelRegistry and the acceptance criterion of the
// store subsystem: a model mined via MiningSession, saved to a store file,
// reopened cold, and served through the registry scores vertices
// bit-identically to the in-memory model.
#include "engine/model_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/session.h"
#include "graph/generators.h"
#include "store/model_store.h"
#include "testing_util.h"
#include "util/rng.h"

namespace cspm::engine {
namespace {

using cspm::testing::PaperExampleGraph;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

graph::AttributedGraph SmallRandomGraph(uint64_t seed) {
  Rng rng(seed);
  return graph::ErdosRenyi(150, 0.05, 15, 3, &rng).value();
}

TEST(ModelRegistry, PutGetListRemove) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Get("m"), nullptr);
  EXPECT_EQ(registry.size(), 0u);

  auto g = PaperExampleGraph();
  ServableModel m;
  m.model = MineModel(g).value();
  m.dict = g.dict();
  registry.Put("b-model", m);
  registry.Put("a-model", std::move(m));

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.List(), (std::vector<std::string>{"a-model", "b-model"}));
  ASSERT_NE(registry.Get("a-model"), nullptr);
  EXPECT_TRUE(registry.Remove("a-model"));
  EXPECT_FALSE(registry.Remove("a-model"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistry, HandlesAreCopyOnWrite) {
  ModelRegistry registry;
  auto g = PaperExampleGraph();
  ServableModel m;
  m.model = MineModel(g).value();
  m.dict = g.dict();
  m.graph = std::make_shared<const graph::AttributedGraph>(g);
  auto old_handle = registry.Put("m", m);
  const size_t old_astars = old_handle->model.astars.size();

  // Replace with an empty model; the old handle must be unaffected.
  ServableModel replacement;
  replacement.dict = g.dict();
  registry.Put("m", std::move(replacement));
  EXPECT_EQ(old_handle->model.astars.size(), old_astars);
  EXPECT_EQ(registry.Get("m")->model.astars.size(), 0u);

  registry.Remove("m");
  // Still valid after removal.
  EXPECT_EQ(old_handle->model.astars.size(), old_astars);
}

TEST(ModelRegistry, LoadStoreLoadsEveryModel) {
  const std::string path = TempPath("registry_loadstore.cspm");
  std::remove(path.c_str());
  auto g = PaperExampleGraph();
  auto model = MineModel(g).value();
  {
    auto store = store::ModelStore::Create(path).value();
    store::StoredModel stored;
    stored.model = model;
    stored.dict = g.dict();
    ASSERT_TRUE(store.Put("one", stored).ok());
    ASSERT_TRUE(store.Put("two", stored).ok());
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadStore(path).ok());
  EXPECT_EQ(registry.List(), (std::vector<std::string>{"one", "two"}));
  EXPECT_FALSE(registry.LoadModel(path, "three").ok());
  EXPECT_FALSE(registry.LoadStore(TempPath("registry_missing.cspm")).ok());
  std::remove(path.c_str());
}

TEST(ModelRegistry, ScoreVertexNeedsGraphSnapshot) {
  ModelRegistry registry;
  auto g = PaperExampleGraph();
  ServableModel m;
  m.model = MineModel(g).value();
  m.dict = g.dict();
  auto no_graph = registry.Put("no-graph", m);
  EXPECT_FALSE(no_graph->ScoreVertex(graph::VertexId(0)).ok());

  m.graph = std::make_shared<const graph::AttributedGraph>(g);
  auto with_graph = registry.Put("with-graph", std::move(m));
  EXPECT_TRUE(with_graph->ScoreVertex(graph::VertexId(0)).ok());
  auto out_of_range = with_graph->ScoreVertex(graph::VertexId(10000));
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kOutOfRange);
}

TEST(ModelRegistry, PutRecompilesPlanForMutatedModel) {
  ModelRegistry registry;
  auto g = PaperExampleGraph();
  ServableModel m;
  m.model = MineModel(g).value();
  m.dict = g.dict();
  m.graph = std::make_shared<const graph::AttributedGraph>(g);
  m.CompilePlan();
  // Mutate after an explicit compile: registration must recompile, not
  // serve scores from the stale pre-mutation plan.
  m.model.astars.clear();
  auto handle = registry.Put("mutated", std::move(m));
  const auto scores = handle->ScoreVertex(graph::VertexId(0)).value();
  for (double s : scores.normalized) EXPECT_EQ(s, 0.0);  // no evidence left
}

TEST(ModelRegistry, ScoreVertexRejectsDictNotCoveringGraph) {
  ModelRegistry registry;
  auto g = PaperExampleGraph();
  ServableModel m;
  m.model = MineModel(g).value();
  // A dictionary narrower than the snapshot's attribute space (a
  // mismatched store record): clean Status, not garbage scores.
  m.dict = graph::AttributeDictionary();
  m.dict.Intern("only-one");
  m.graph = std::make_shared<const graph::AttributedGraph>(g);
  auto handle = registry.Put("mismatched", std::move(m));
  auto scores = handle->ScoreVertex(graph::VertexId(0));
  ASSERT_FALSE(scores.ok());
  EXPECT_EQ(scores.status().code(), StatusCode::kFailedPrecondition);
  // The batch path rejects the same pairing at engine construction.
  auto engine = handle->Serve();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kFailedPrecondition);
}

// The PR's acceptance criterion: mine → save → reopen cold → serve via the
// registry, and every score matches the in-memory session bit-for-bit.
TEST(ModelRegistry, ReloadedModelScoresBitIdentically) {
  const std::string path = TempPath("registry_acceptance.cspm");
  std::remove(path.c_str());
  auto g = SmallRandomGraph(21);
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  SaveModelOptions save;
  save.include_graph = true;
  save.model_name = "acceptance";
  ASSERT_TRUE(session.SaveModel(path, save).ok());

  // "Fresh process": a registry that has seen neither the graph nor the
  // session — everything comes from the store file.
  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel(path, "acceptance").ok());
  auto handle = registry.Get("acceptance");
  ASSERT_NE(handle, nullptr);
  ASSERT_TRUE(handle->graph != nullptr);

  for (graph::VertexId v(0); v < g.num_vertices(); ++v) {
    const AttributeScores expected = session.Score(v);
    const AttributeScores served = handle->ScoreVertex(v).value();
    ASSERT_EQ(served.raw.size(), expected.raw.size());
    for (size_t i = 0; i < expected.raw.size(); ++i) {
      // Bit-identical, including -inf sentinels: EXPECT_EQ, never NEAR.
      EXPECT_EQ(served.raw[i], expected.raw[i]) << "v=" << v << " i=" << i;
      EXPECT_EQ(served.normalized[i], expected.normalized[i])
          << "v=" << v << " i=" << i;
    }
  }
  std::remove(path.c_str());
}

// Same bit-identity through the session LoadModel path (store dictionary
// remapped onto the live graph's dictionary).
TEST(ModelRegistry, SessionReloadScoresBitIdentically) {
  const std::string path = TempPath("registry_session_reload.cspm");
  std::remove(path.c_str());
  auto g = SmallRandomGraph(33);
  auto session = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(session.Mine().ok());
  ASSERT_TRUE(session.SaveModel(path).ok());

  auto reloaded = std::move(MiningSession::Create(g)).value();
  ASSERT_TRUE(reloaded.LoadModel(path).ok());
  for (uint32_t raw : {0u, 7u, 42u, 149u}) {
    const graph::VertexId v(raw);
    const AttributeScores expected = session.Score(v);
    const AttributeScores served = reloaded.Score(v);
    ASSERT_EQ(served.raw.size(), expected.raw.size());
    for (size_t i = 0; i < expected.raw.size(); ++i) {
      EXPECT_EQ(served.raw[i], expected.raw[i]) << "v=" << v << " i=" << i;
    }
  }
  std::remove(path.c_str());
}

// Concurrent readers scoring through handles while a writer hot-swaps the
// model — exercised under ASan/UBSan in CI.
TEST(ModelRegistry, ConcurrentGetAndReplace) {
  ModelRegistry registry;
  auto g = PaperExampleGraph();
  ServableModel m;
  m.model = MineModel(g).value();
  m.dict = g.dict();
  m.graph = std::make_shared<const graph::AttributedGraph>(g);
  registry.Put("hot", m);

  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&registry, &g] {
      for (int i = 0; i < 200; ++i) {
        auto handle = registry.Get("hot");
        if (handle == nullptr) continue;
        auto scores = handle->ScoreVertex(
            graph::VertexId(static_cast<uint32_t>(i) % g.num_vertices().value()));
        if (scores.ok()) {
          volatile double sink = scores->normalized.empty()
                                     ? 0.0
                                     : scores->normalized[0];
          (void)sink;
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    registry.Put("hot", m);
    if (i % 10 == 0) registry.Remove("hot");
  }
  for (auto& t : readers) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace cspm::engine
