// Direct tests for the code model (ST, CTc, CTL cost terms of Eqs. 1-6)
// against hand computations on the paper's running example.
#include "cspm/code_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing_util.h"

namespace cspm::core {
namespace {

// Single-value-coreset mode: core ids start out coinciding with
// attribute-value ids; spell the correspondence out.
CoreId C(AttrId a) { return CoreId(a.value()); }

class CodeModelPaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = std::make_unique<graph::AttributedGraph>(
        cspm::testing::PaperExampleGraph());
    a_ = g_->dict().Find("a");
    b_ = g_->dict().Find("b");
    c_ = g_->dict().Find("c");
    auto idb_or = InvertedDatabase::FromGraph(*g_);
    ASSERT_TRUE(idb_or.status().ok());
    idb_ = std::make_unique<InvertedDatabase>(std::move(idb_or).value());
    cm_ = std::make_unique<CodeModel>(*g_, *idb_);
  }

  std::unique_ptr<graph::AttributedGraph> g_;
  std::unique_ptr<InvertedDatabase> idb_;
  std::unique_ptr<CodeModel> cm_;
  AttrId a_{}, b_{}, c_{};
};

TEST_F(CodeModelPaperExample, StLengthsMatchFrequencies) {
  // Occurrences: a:3, b:2, c:2 out of 7 (vertex, value) pairs.
  EXPECT_NEAR(cm_->StCodeLength(a_), -std::log2(3.0 / 7.0), 1e-12);
  EXPECT_NEAR(cm_->StCodeLength(b_), -std::log2(2.0 / 7.0), 1e-12);
  EXPECT_NEAR(cm_->StCodeLength(c_), -std::log2(2.0 / 7.0), 1e-12);
}

TEST_F(CodeModelPaperExample, SingleValueCoreCodesEqualSt) {
  // "CTc is exactly the standard code table ST if all coresets have one
  // core value" (Section IV-C).
  for (AttrId x : {a_, b_, c_}) {
    EXPECT_NEAR(cm_->CoreCodeLength(C(x)), cm_->StCodeLength(x), 1e-12);
  }
}

TEST_F(CodeModelPaperExample, StCostSumsValues) {
  std::vector<AttrId> bc{b_, c_};
  std::sort(bc.begin(), bc.end());
  EXPECT_NEAR(cm_->StCost(bc),
              cm_->StCodeLength(b_) + cm_->StCodeLength(c_), 1e-12);
  EXPECT_DOUBLE_EQ(cm_->StCost(std::vector<AttrId>{}), 0.0);
}

TEST_F(CodeModelPaperExample, LeafCodeLengthIsEq6) {
  EXPECT_NEAR(CodeModel::LeafCodeLength(2, 6), -std::log2(2.0 / 6.0),
              1e-12);
  EXPECT_NEAR(CodeModel::LeafCodeLength(6, 6), 0.0, 1e-12);
}

TEST_F(CodeModelPaperExample, CoresetTableCostHandComputed) {
  // Each of the three coresets: ST spelling of its single value plus its
  // own Code_c (== ST for single values).
  const double la = -std::log2(3.0 / 7.0);
  const double lb = -std::log2(2.0 / 7.0);
  EXPECT_NEAR(cm_->CoresetTableCostBits(*idb_),
              2 * la + 2 * lb + 2 * lb, 1e-9);
}

TEST_F(CodeModelPaperExample, LeafsetTableCostCountsEveryLine) {
  // 8 initial lines; each contributes ST(leafset) + Code_c + Code_L > 0.
  const double cost = cm_->LeafsetTableCostBits(*idb_);
  EXPECT_GT(cost, 0.0);
  // Lower bound: 8 lines x the cheapest possible ST+Code_c (> 2 bits).
  EXPECT_GT(cost, 8 * 2.0);
}

TEST_F(CodeModelPaperExample, TotalIsSumOfParts) {
  EXPECT_NEAR(cm_->TotalDescriptionLengthBits(*idb_),
              cm_->CoresetTableCostBits(*idb_) +
                  cm_->LeafsetTableCostBits(*idb_) + idb_->DataCostBits(),
              1e-9);
}

TEST_F(CodeModelPaperExample, MergeShrinksTotalWhenGainPositive) {
  const double before = cm_->TotalDescriptionLengthBits(*idb_);
  idb_->MergeLeafsets(LeafsetId(b_.value()), LeafsetId(c_.value()));  // the paper's winning merge
  const double after = cm_->TotalDescriptionLengthBits(*idb_);
  EXPECT_LT(after, before);
}

TEST_F(CodeModelPaperExample, DataCostMatchesEq8OnExample) {
  // L(I|M) = sum_e f_e log f_e - sum_lines fL log fL:
  //   core a: 6 log 6 - (2log2 + 2log2 + 2log2)
  //   core b: 4 log 4 - (0 + 2log2 + 0)
  //   core c: 3 log 3 - (2log2 + 0)
  const double expected = (6 * std::log2(6.0) - 3 * 2.0) +
                          (4 * std::log2(4.0) - 2.0) +
                          (3 * std::log2(3.0) - 2.0);
  EXPECT_NEAR(idb_->DataCostBits(), expected, 1e-9);
}

}  // namespace
}  // namespace cspm::core
