// cspm_client: command-line driver for a running cspm_serve (CSN1
// protocol, docs/PROTOCOL.md). One subcommand per verb, plus
// `verify-scores` — the cross-process bit-identity checker: it rebuilds
// the served model state locally (snapshot + WAL replay, exactly as the
// server did) and compares every wire score against an in-process
// ScoreBatch, bit for bit.
//
//   cspm_client <addr:port> ping
//   cspm_client <addr:port> list
//   cspm_client <addr:port> metrics
//   cspm_client <addr:port> score <model> <v1> [v2 ...] [k=N]
//   cspm_client <addr:port> update <store.cspm> <model> <ops> [seed]
//                           [--mode=exact|fast]
//   cspm_client <addr:port> verify-scores <store.cspm> <model> [count]
//
// `update` and `verify-scores` read the server's store file (atomic
// commits keep concurrent readers consistent) — `update` to learn the
// current graph shape so its random edge rewires are valid, and
// `verify-scores` to reproduce the model state the server is serving.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/session.h"
#include "graph/graph_delta.h"
#include "net/client.h"
#include "net/frame.h"
#include "store/model_store.h"
#include "util/status.h"
#include "util/string_util.h"

namespace {

using cspm::ParseUint32;
using cspm::StartsWith;
using cspm::Status;
using cspm::StatusOr;

int Usage() {
  std::fprintf(
      stderr,
      "usage: cspm_client <addr:port> <command>\n"
      "  ping\n"
      "  list\n"
      "  metrics\n"
      "  score <model> <v1> [v2 ...] [k=N]   (default k=5; k=0 = all)\n"
      "  update <store.cspm> <model> <ops> [seed] [--mode=exact|fast]\n"
      "  verify-scores <store.cspm> <model> [count]\n");
  return 2;
}

StatusOr<cspm::net::Client> Dial(const std::string& target) {
  const size_t colon = target.rfind(':');
  uint32_t port = 0;
  if (colon == std::string::npos ||
      !ParseUint32(target.substr(colon + 1), &port) || port == 0 ||
      port > 65535) {
    return Status::InvalidArgument("bad <addr:port> '" + target + "'");
  }
  return cspm::net::Client::Connect(target.substr(0, colon),
                                    static_cast<uint16_t>(port));
}

Status CmdScore(cspm::net::Client& client,
                const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument(
        "usage: score <model> <v1> [v2 ...] [k=N]");
  }
  cspm::net::ScoreRequest request;
  request.model = args[0];
  request.k = 5;
  for (size_t i = 1; i < args.size(); ++i) {
    if (StartsWith(args[i], "k=")) {
      if (!ParseUint32(args[i].substr(2), &request.k)) {
        return Status::InvalidArgument("bad top-k '" + args[i] + "'");
      }
      continue;
    }
    uint32_t v = 0;
    if (!ParseUint32(args[i], &v)) {
      return Status::InvalidArgument("bad vertex id '" + args[i] + "'");
    }
    request.vertices.push_back(cspm::graph::VertexId(v));
  }
  if (request.vertices.empty()) {
    return Status::InvalidArgument("no vertices given");
  }
  CSPM_ASSIGN_OR_RETURN(cspm::net::ScoreResponse response,
                        client.Score(request));
  for (size_t i = 0; i < response.results.size(); ++i) {
    // Attribute ids, not names: the dictionary stays server-side. The
    // score values are bit-identical to `cspm_shell score` output.
    std::printf("top-%zu scores for vertex %u of '%s':\n",
                response.results[i].size(),
                request.vertices[i].value(), request.model.c_str());
    for (const auto& entry : response.results[i]) {
      std::printf("  attr %-14u %.6f\n", entry.attr.value(), entry.score);
    }
  }
  return Status::OK();
}

/// The graph the server currently serves for `model`: the stored snapshot
/// with every pending WAL delta applied (graph-level only — no mining).
StatusOr<cspm::graph::AttributedGraph> CurrentGraph(
    const std::string& store_path, const std::string& model) {
  CSPM_ASSIGN_OR_RETURN(cspm::store::ModelStore store,
                        cspm::store::ModelStore::Open(store_path));
  CSPM_ASSIGN_OR_RETURN(cspm::store::StoredModel stored, store.Get(model));
  if (!stored.graph.has_value()) {
    return Status::FailedPrecondition("model '" + model +
                                      "' has no graph snapshot");
  }
  CSPM_ASSIGN_OR_RETURN(cspm::store::ModelStore::WalReplay wal,
                        store.ReadWal(model));
  cspm::graph::AttributedGraph graph = std::move(*stored.graph);
  for (const cspm::graph::GraphDelta& delta : wal.deltas) {
    CSPM_ASSIGN_OR_RETURN(cspm::graph::DeltaApplication applied,
                          cspm::graph::ApplyDelta(graph, delta));
    graph = std::move(applied.graph);
  }
  return graph;
}

Status CmdUpdate(cspm::net::Client& client,
                 const std::vector<std::string>& args) {
  uint8_t mode = 0;
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    if (arg == "--mode=exact") {
      mode = 0;
    } else if (arg == "--mode=fast") {
      mode = 1;
    } else if (StartsWith(arg, "--mode=")) {
      return Status::InvalidArgument("bad " + arg + " (exact or fast)");
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 3 || positional.size() > 4) {
    return Status::InvalidArgument(
        "usage: update <store.cspm> <model> <ops> [seed] [--mode=exact|fast]");
  }
  uint32_t ops = 0;
  if (!ParseUint32(positional[2], &ops) || ops == 0) {
    return Status::InvalidArgument("bad edge-op count '" + positional[2] +
                                   "'");
  }
  uint32_t seed = 1;
  if (positional.size() > 3 && !ParseUint32(positional[3], &seed)) {
    return Status::InvalidArgument("bad seed '" + positional[3] + "'");
  }
  CSPM_ASSIGN_OR_RETURN(cspm::graph::AttributedGraph graph,
                        CurrentGraph(positional[0], positional[1]));
  cspm::net::UpdateRequest request;
  request.model = positional[1];
  request.mode = mode;
  CSPM_ASSIGN_OR_RETURN(request.delta,
                        cspm::graph::MakeRandomEdgeRewires(graph, ops, seed));
  CSPM_ASSIGN_OR_RETURN(cspm::net::UpdateResponse response,
                        client.Update(request));
  std::printf(
      "updated '%s' with %zu edge op(s): %" PRIu64
      " dirty vertices, %s re-mine, DL %.1f -> %.1f bits\n",
      request.model.c_str(), request.delta.num_ops(), response.dirty_vertices,
      response.fast_path   ? "fast warm"
      : response.warm_path ? "exact warm"
                           : "cold",
      response.dl_before_bits, response.dl_after_bits);
  return Status::OK();
}

Status CmdVerifyScores(cspm::net::Client& client,
                       const std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 3) {
    return Status::InvalidArgument(
        "usage: verify-scores <store.cspm> <model> [count]");
  }
  const std::string& store_path = args[0];
  const std::string& model = args[1];
  uint32_t count = 16;
  if (args.size() > 2 && !ParseUint32(args[2], &count)) {
    return Status::InvalidArgument("bad count '" + args[2] + "'");
  }
  // Rebuild the state the server serves, the way the server built it:
  // deterministic mine from the snapshot, then the WAL rolled forward in
  // its recorded modes.
  CSPM_ASSIGN_OR_RETURN(cspm::store::ModelStore store,
                        cspm::store::ModelStore::Open(store_path));
  CSPM_ASSIGN_OR_RETURN(cspm::store::StoredModel stored, store.Get(model));
  if (!stored.graph.has_value()) {
    return Status::FailedPrecondition("model '" + model +
                                      "' has no graph snapshot");
  }
  CSPM_ASSIGN_OR_RETURN(cspm::store::ModelStore::WalReplay wal,
                        store.ReadWal(model));
  cspm::engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  opts.enable_updates = true;
  CSPM_ASSIGN_OR_RETURN(cspm::engine::MiningSession session,
                        cspm::engine::MiningSession::Create(
                            std::make_shared<const cspm::graph::AttributedGraph>(
                                std::move(*stored.graph)),
                            opts));
  CSPM_RETURN_IF_ERROR(session.Mine());
  for (size_t i = 0; i < wal.deltas.size(); ++i) {
    const cspm::engine::UpdateMode mode =
        wal.modes[i] == cspm::store::WalDeltaMode::kFast
            ? cspm::engine::UpdateMode::kFast
            : cspm::engine::UpdateMode::kExact;
    CSPM_RETURN_IF_ERROR(session.ApplyUpdates(wal.deltas[i], mode, nullptr));
  }
  const uint32_t n = session.graph().num_vertices().value();
  if (n == 0) return Status::FailedPrecondition("empty graph");
  cspm::net::ScoreRequest request;
  request.model = model;
  request.k = 0;  // every attribute value — the full surface, not a sample
  for (uint32_t i = 0; i < count; ++i) {
    // Deterministic spread across the id space.
    request.vertices.push_back(
        cspm::graph::VertexId(static_cast<uint32_t>(
            (uint64_t{i} * n) / count)));
  }
  CSPM_ASSIGN_OR_RETURN(std::vector<cspm::engine::AttributeScores> expected,
                        session.ScoreBatch(request.vertices));
  CSPM_ASSIGN_OR_RETURN(cspm::net::ScoreResponse got, client.Score(request));
  if (got.results.size() != expected.size()) {
    return Status::Internal(cspm::StrFormat(
        "result count mismatch: wire %zu vs local %zu", got.results.size(),
        expected.size()));
  }
  size_t compared = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    const std::vector<cspm::net::ScoreResponse::Entry> local =
        cspm::net::TopKScores(expected[i], 0);
    if (got.results[i].size() != local.size()) {
      return Status::Internal(cspm::StrFormat(
          "vertex %u: entry count mismatch: wire %zu vs local %zu",
          request.vertices[i].value(), got.results[i].size(), local.size()));
    }
    for (size_t j = 0; j < local.size(); ++j) {
      const auto& w = got.results[i][j];
      const auto& l = local[j];
      // memcmp, not ==: bit-identity is the contract (and NaN-proof).
      if (w.attr != l.attr ||
          std::memcmp(&w.score, &l.score, sizeof(double)) != 0) {
        return Status::Internal(cspm::StrFormat(
            "vertex %u rank %zu: wire (attr %u, %.17g) vs local "
            "(attr %u, %.17g) — scores must be bit-identical",
            request.vertices[i].value(), j, w.attr.value(), w.score,
            l.attr.value(), l.score));
      }
      ++compared;
    }
  }
  std::printf(
      "verify-scores OK: %zu vertices x %zu attribute values "
      "(%zu scores) bit-identical to in-process ScoreBatch\n",
      expected.size(), expected.empty() ? 0 : got.results[0].size(), compared);
  return Status::OK();
}

Status Run(int argc, char** argv) {
  const std::string command = argv[2];
  std::vector<std::string> args(argv + 3, argv + argc);
  CSPM_ASSIGN_OR_RETURN(cspm::net::Client client, Dial(argv[1]));
  if (command == "ping") {
    CSPM_RETURN_IF_ERROR(client.Ping());
    std::printf("pong\n");
    return Status::OK();
  }
  if (command == "list") {
    CSPM_ASSIGN_OR_RETURN(std::vector<std::string> models, client.List());
    for (const std::string& name : models) std::printf("%s\n", name.c_str());
    return Status::OK();
  }
  if (command == "metrics") {
    CSPM_ASSIGN_OR_RETURN(std::string json, client.MetricsJson());
    std::printf("%s\n", json.c_str());
    return Status::OK();
  }
  if (command == "score") return CmdScore(client, args);
  if (command == "update") return CmdUpdate(client, args);
  if (command == "verify-scores") return CmdVerifyScores(client, args);
  return Status::InvalidArgument("unknown command '" + command + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const Status status = Run(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "cspm_client: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
