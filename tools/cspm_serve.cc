// cspm_serve: the network serving daemon. Opens a model store, brings
// every model live (replaying any pending WAL deltas the way `cspm_shell
// replay` would), binds a TCP port and serves the CSN1 protocol
// (docs/PROTOCOL.md) until SIGINT/SIGTERM.
//
//   cspm_serve <store.cspm> [--port N] [--bind ADDR] [--max-batch N]
//              [--max-wait-us N] [--max-queue N] [--max-updates N]
//              [--score-threads N]
//
// --port 0 (the default) binds an ephemeral port; the chosen port is on
// the startup line (`serving ... on 127.0.0.1:PORT`), which scripts
// parse. Tuning guidance for the batching knobs is in docs/OPERATIONS.md.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "net/model_host.h"
#include "net/server.h"
#include "util/string_util.h"

namespace {

// The signal handler only calls the async-signal-safe RequestStop().
cspm::net::Server* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->RequestStop();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: cspm_serve <store.cspm> [--port N] [--bind ADDR]\n"
      "                  [--max-batch N] [--max-wait-us N] [--max-queue N]\n"
      "                  [--max-updates N] [--score-threads N]\n"
      "\n"
      "  --port N           TCP port; 0 = ephemeral (printed on startup)\n"
      "  --bind ADDR        IPv4 literal to bind (default 127.0.0.1)\n"
      "  --max-batch N      flush a score batch at N queued vertices\n"
      "  --max-wait-us N    ... or when the oldest request waited N us\n"
      "  --max-queue N      admission bound: reply OVERLOADED beyond N\n"
      "                     queued vertices per model\n"
      "  --max-updates N    bounded update queue (OVERLOADED beyond it)\n"
      "  --score-threads N  ScoreBatch shards: 1 serial, 0 = one per core\n");
  return 2;
}

bool ParseSize(const std::string& value, size_t* out) {
  uint32_t parsed = 0;
  if (!cspm::ParseUint32(value, &parsed)) return false;
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path;
  cspm::net::ServerOptions options;
  cspm::net::ModelHost::Options host_options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    uint32_t parsed = 0;
    int match = cspm::MatchFlagWithValue(argc, argv, &i, "--port", &value);
    if (match != 0) {
      if (match < 0 || !cspm::ParseUint32(value, &parsed) || parsed > 65535) {
        return Usage();
      }
      options.port = static_cast<uint16_t>(parsed);
      continue;
    }
    match = cspm::MatchFlagWithValue(argc, argv, &i, "--bind", &value);
    if (match != 0) {
      if (match < 0) return Usage();
      options.bind_address = value;
      continue;
    }
    match = cspm::MatchFlagWithValue(argc, argv, &i, "--max-batch", &value);
    if (match != 0) {
      if (match < 0 ||
          !ParseSize(value, &options.batching.max_batch_vertices) ||
          options.batching.max_batch_vertices == 0) {
        return Usage();
      }
      continue;
    }
    match = cspm::MatchFlagWithValue(argc, argv, &i, "--max-wait-us", &value);
    if (match != 0) {
      if (match < 0 || !cspm::ParseUint32(value, &parsed)) return Usage();
      options.batching.max_wait_us = parsed;
      continue;
    }
    match = cspm::MatchFlagWithValue(argc, argv, &i, "--max-queue", &value);
    if (match != 0) {
      if (match < 0 ||
          !ParseSize(value, &options.batching.max_queue_vertices) ||
          options.batching.max_queue_vertices == 0) {
        return Usage();
      }
      continue;
    }
    match = cspm::MatchFlagWithValue(argc, argv, &i, "--max-updates", &value);
    if (match != 0) {
      if (match < 0 || !ParseSize(value, &options.max_pending_updates)) {
        return Usage();
      }
      continue;
    }
    match = cspm::MatchFlagWithValue(argc, argv, &i, "--score-threads", &value);
    if (match != 0) {
      if (match < 0 || !cspm::ParseUint32(value, &parsed)) return Usage();
      host_options.score_threads = parsed;
      continue;
    }
    if (!store_path.empty() || argv[i][0] == '-') return Usage();
    store_path = argv[i];
  }
  if (store_path.empty()) return Usage();

  auto host_or = cspm::net::ModelHost::Open(store_path, host_options);
  if (!host_or.ok()) {
    std::fprintf(stderr, "cspm_serve: %s\n",
                 host_or.status().ToString().c_str());
    return 1;
  }
  const size_t num_models = host_or.value()->List().size();
  auto server_or =
      cspm::net::Server::Start(std::move(host_or).value(), options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "cspm_serve: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<cspm::net::Server> server = std::move(server_or).value();
  g_server = server.get();
  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // SIGPIPE would kill the process on a write to a half-closed socket;
  // the server handles the EPIPE errno instead.
  signal(SIGPIPE, SIG_IGN);

  std::printf(
      "serving %zu model(s) from %s on %s:%u "
      "(max-batch=%zu max-wait-us=%llu max-queue=%zu)\n",
      num_models, store_path.c_str(), options.bind_address.c_str(),
      unsigned{server->port()}, options.batching.max_batch_vertices,
      static_cast<unsigned long long>(options.batching.max_wait_us),
      options.batching.max_queue_vertices);
  std::fflush(stdout);  // scripts wait for this line to learn the port

  server->Join();
  std::printf("cspm_serve: shut down cleanly\n");
  g_server = nullptr;
  return 0;
}
