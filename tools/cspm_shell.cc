// Interactive serving shell over the model store, in the spirit of the
// classic database REPLs: mine a model, persist it to a paged store file,
// reopen it in another process, and serve scores — without ever touching
// the miner again.
//
//   $ cspm_shell [--threads N] [store.cspm]
//   cspm> mine dblp 500
//   cspm> save demo
//   cspm> ls
//   cspm> load demo
//   cspm> score 0 5
//   cspm> score-all 10
//
// Scoring goes through the batch serving engine (one compiled plan per
// model; `--threads N` shards score/score-all batches, 0 = auto).
//
// Commands read from stdin line by line, so the shell doubles as a batch
// driver: `printf 'mine dblp\nsave m\nexit\n' | cspm_shell store.cspm`.
// When stdin is not a terminal, any failing command exits with status 1
// (CI smoke tests rely on this).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "datasets/synthetic.h"
#include "engine/model_registry.h"
#include "engine/session.h"
#include "graph/generators.h"
#include "graph/graph_delta.h"
#include "obs/metrics.h"
#include "store/model_store.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace cspm::shell {
namespace {

constexpr const char* kHistoryFile = ".cspm_shell_history";

struct Shell {
  std::optional<store::ModelStore> store;
  engine::ModelRegistry registry;
  /// The model commands act on: last mined or last loaded.
  engine::ModelRegistry::Handle current;
  std::string current_name;
  /// The live mining session behind `update` / `replay`: co-owns the
  /// mined graph and warm-start state. Scoring still goes through the
  /// registry handle, which hot-swaps on every update.
  std::optional<engine::MiningSession> session;
  /// Registry name the live session publishes under.
  std::string session_name;
  /// The session's latest published handle — identifies whether `current`
  /// is the live session's model (vs a loaded snapshot).
  engine::ModelRegistry::Handle session_handle;
  bool interactive = false;
  /// Shards for score / score-all batches (0 = one per hardware core).
  uint32_t threads = 1;
};

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  open <path>              open or create a store file\n"
      "  mine <dataset> [n] [seed]  mine a synthetic graph; datasets:\n"
      "                           dblp dblp-trend usflight pokec cora\n"
      "                           citeseer er\n"
      "  save <name>              save the current model (+graph) to the store\n"
      "  load <name>              load a model from the store and make it current\n"
      "  ls                       list models in the store\n"
      "  rm <name>                delete a model from the store\n"
      "  score <v1> [v2 ...] [k=N]  top-N (default 5) attribute scores per\n"
      "                           listed vertex, computed as one serving batch\n"
      "  score-all [k]            batch-score every vertex; print the k best\n"
      "                           (vertex, attribute) pairs and throughput\n"
      "  update [--mode=exact|fast] <edge-ops> [seed]\n"
      "                           apply that many random edge rewires to the\n"
      "                           live graph, re-mine incrementally, hot-swap\n"
      "                           the served model, and append the delta (and\n"
      "                           mode) to the store's WAL (when saved).\n"
      "                           exact (default) = bit-identical to a cold\n"
      "                           re-mine; fast = continue from the final\n"
      "                           model, DL within ~epsilon of cold\n"
      "  replay <name>            rebuild <name> from its store snapshot and\n"
      "                           re-apply its pending WAL deltas, each in\n"
      "                           the mode it was originally applied with\n"
      "  stats [--json]           mining statistics of the current model\n"
      "  metrics [--json]         process-wide metrics: counters, gauges,\n"
      "                           and phase-latency histograms (p50/p99);\n"
      "                           --json emits the stable one-line schema\n"
      "  fsck <path>              deep-verify a store file: page-chain\n"
      "                           ownership, catalog consistency, record and\n"
      "                           WAL decodability (beyond the page CRCs)\n"
      "  help                     this text\n"
      "  exit | quit | .exit      leave\n"
      "\n"
      "score and score-all shard across --threads N workers (0 = auto;\n"
      "results are identical at any thread count). Every command's latency\n"
      "feeds a shell.cmd.* histogram, so `metrics` shows this session's\n"
      "own command timing profile.\n");
}

/// "N a-stars, DL A -> B bits (+D)" — the model summary fragment every
/// command prints; mine, update, replay, and stats all funnel through it
/// so the numbers render identically everywhere.
std::string DlSummary(size_t astars, double before_bits, double after_bits) {
  return StrFormat("%zu a-stars, DL %.1f -> %.1f bits (%+.1f)", astars,
                   before_bits, after_bits, after_bits - before_bits);
}

/// Scales a nanosecond quantity into a human unit for the metrics table.
std::string FormatNanos(double ns) {
  if (ns >= 1e9) return StrFormat("%.2fs", ns / 1e9);
  if (ns >= 1e6) return StrFormat("%.2fms", ns / 1e6);
  if (ns >= 1e3) return StrFormat("%.2fus", ns / 1e3);
  return StrFormat("%.0fns", ns);
}

Status RequireStore(const Shell& sh) {
  if (!sh.store.has_value()) {
    return Status::FailedPrecondition("no store open; use: open <path>");
  }
  return Status::OK();
}

Status RequireCurrent(const Shell& sh) {
  if (sh.current == nullptr) {
    return Status::FailedPrecondition(
        "no current model; mine one or load one first");
  }
  return Status::OK();
}

StatusOr<graph::AttributedGraph> MakeDataset(const std::string& name,
                                             uint32_t n, uint64_t seed) {
  if (name == "dblp") {
    return n == 0 ? datasets::MakeDblpLike(seed)
                  : datasets::MakeDblpLike(seed, n);
  }
  if (name == "dblp-trend") {
    return n == 0 ? datasets::MakeDblpTrendLike(seed)
                  : datasets::MakeDblpTrendLike(seed, n);
  }
  if (name == "usflight") {
    return n == 0 ? datasets::MakeUsflightLike(seed)
                  : datasets::MakeUsflightLike(seed, n);
  }
  if (name == "pokec") {
    return n == 0 ? datasets::MakePokecLike(seed)
                  : datasets::MakePokecLike(seed, n);
  }
  if (name == "cora") return datasets::MakeCoraLike(seed);
  if (name == "citeseer") return datasets::MakeCiteseerLike(seed);
  if (name == "er") {
    Rng rng(seed);
    return graph::ErdosRenyi(n == 0 ? 500 : n, 0.02, 20, 3, &rng);
  }
  return Status::InvalidArgument(
      "unknown dataset '" + name +
      "' (try: dblp dblp-trend usflight pokec cora citeseer er)");
}

Status CmdOpen(Shell& sh, const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("usage: open <path>");
  auto store_or = store::ModelStore::OpenOrCreate(args[1]);
  if (!store_or.ok()) return store_or.status();
  sh.store.emplace(std::move(store_or).value());
  std::printf("store %s: %zu model(s)\n", sh.store->path().c_str(),
              sh.store->size());
  return Status::OK();
}

/// (Re)creates the live session over `graph`, mines, and publishes the
/// result to the registry under `name` (hot-swapping any previous handle).
Status MineAndPublish(Shell& sh, graph::AttributedGraph graph,
                      const std::string& name) {
  sh.session.reset();
  engine::MiningOptions opts;
  opts.record_iteration_stats = false;
  opts.enable_updates = true;
  auto session_or = engine::MiningSession::Create(
      std::make_shared<const graph::AttributedGraph>(std::move(graph)), opts);
  if (!session_or.ok()) return session_or.status();
  sh.session.emplace(std::move(session_or).value());
  CSPM_RETURN_IF_ERROR(sh.session->Mine());
  auto handle_or = sh.session->Publish(sh.registry, name);
  if (!handle_or.ok()) return handle_or.status();
  sh.current = std::move(handle_or).value();
  sh.session_handle = sh.current;
  sh.current_name = name;
  sh.session_name = name;
  return Status::OK();
}

Status CmdMine(Shell& sh, const std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 4) {
    return Status::InvalidArgument("usage: mine <dataset> [n] [seed]");
  }
  const uint32_t n =
      args.size() > 2
          ? static_cast<uint32_t>(std::strtoul(args[2].c_str(), nullptr, 10))
          : 0;
  const uint64_t seed =
      args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 1;
  auto graph_or = MakeDataset(args[1], n, seed);
  if (!graph_or.ok()) return graph_or.status();
  CSPM_RETURN_IF_ERROR(
      MineAndPublish(sh, std::move(graph_or).value(), args[1]));
  const auto& m = sh.current->model;
  std::printf(
      "mined %s: %u vertices, %llu edges, %s (%.3fs)\n", args[1].c_str(),
      sh.current->graph->num_vertices().value(),
      static_cast<unsigned long long>(sh.current->graph->num_edges()),
      DlSummary(m.astars.size(), m.stats.initial_dl_bits,
                m.stats.final_dl_bits)
          .c_str(),
      m.stats.runtime_seconds);
  return Status::OK();
}

Status CmdUpdate(Shell& sh, const std::vector<std::string>& args) {
  engine::UpdateMode mode = engine::UpdateMode::kExact;
  std::vector<std::string> positional;
  for (size_t i = 1; i < args.size(); ++i) {
    if (StartsWith(args[i], "--mode=")) {
      const std::string value = args[i].substr(7);
      if (value == "exact") {
        mode = engine::UpdateMode::kExact;
      } else if (value == "fast") {
        mode = engine::UpdateMode::kFast;
      } else {
        return Status::InvalidArgument("bad --mode '" + value +
                                       "' (exact or fast)");
      }
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.empty() || positional.size() > 2) {
    return Status::InvalidArgument(
        "usage: update [--mode=exact|fast] <edge-ops> [seed]");
  }
  uint32_t ops = 0;
  if (!ParseUint32(positional[0], &ops) || ops == 0) {
    return Status::InvalidArgument("bad edge-op count '" + positional[0] +
                                   "'");
  }
  const uint64_t seed =
      positional.size() > 1 ? std::strtoull(positional[1].c_str(), nullptr, 10)
                            : 1;
  if (!sh.session.has_value()) {
    return Status::FailedPrecondition(
        "no live session; mine (or replay) first — loaded models have no "
        "update state");
  }
  CSPM_ASSIGN_OR_RETURN(
      graph::GraphDelta delta,
      graph::MakeRandomEdgeRewires(sh.session->graph(), ops, seed));
  engine::UpdateStats stats;
  CSPM_RETURN_IF_ERROR(sh.session->ApplyUpdates(delta, mode, &stats));
  // Persist the delta before the serving swap: if the WAL append fails,
  // the registry keeps serving the model the store can still reproduce.
  // The WAL records the mode that actually ran (a fast request can fall
  // back to exact behaviour), so replay reproduces this session's path.
  bool logged = false;
  if (sh.store.has_value() && sh.store->Contains(sh.session_name)) {
    Status appended = sh.store->AppendDelta(
        sh.session_name, delta,
        stats.fast_path ? store::WalDeltaMode::kFast
                        : store::WalDeltaMode::kExact);
    if (!appended.ok()) {
      return Status::IOError(
          "update applied to the live session but its delta could not be "
          "logged (" +
          appended.ToString() +
          "); still serving the previous model — run `save " +
          sh.session_name + "` to resync the store, then retry");
    }
    logged = true;
  }
  // Hot swap: in-flight batches finish on the old handle's triple; the
  // next score command sees the updated model.
  auto handle_or = sh.session->Publish(sh.registry, sh.session_name);
  if (!handle_or.ok()) return handle_or.status();
  sh.current = std::move(handle_or).value();
  sh.session_handle = sh.current;
  sh.current_name = sh.session_name;
  const auto& m = sh.current->model;
  const char* mode_ran = stats.fast_path   ? "fast warm"
                         : stats.warm_path ? "exact warm"
                                           : "cold";
  std::printf(
      "updated '%s' with %zu edge op(s): %zu dirty vertices, %zu dirty "
      "pairs, %llu reseeded, %llu split undo(s), %s re-mine in %.3fs%s\n",
      sh.session_name.c_str(), delta.num_ops(), stats.dirty_vertices,
      stats.dirty_pairs,
      static_cast<unsigned long long>(stats.reseeded_pairs),
      static_cast<unsigned long long>(stats.split_undos), mode_ran,
      stats.apply_seconds, logged ? "; delta appended to WAL" : "");
  std::printf("  now %s\n", DlSummary(m.astars.size(), stats.dl_before_bits,
                                      stats.dl_after_bits)
                                .c_str());
  return Status::OK();
}

Status CmdReplay(Shell& sh, const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("usage: replay <name>");
  CSPM_RETURN_IF_ERROR(RequireStore(sh));
  CSPM_ASSIGN_OR_RETURN(store::StoredModel stored,
                        sh.store->Get(args[1]));
  if (!stored.graph.has_value()) {
    return Status::FailedPrecondition(
        "record '" + args[1] +
        "' has no graph snapshot; save one to enable replay");
  }
  CSPM_ASSIGN_OR_RETURN(store::ModelStore::WalReplay wal,
                        sh.store->ReadWal(args[1]));
  // Rebuild the snapshot model (deterministic), then roll the WAL
  // forward, each delta in the mode it was originally applied with — a
  // fast update's model is path-dependent, so reproducing the session
  // means reproducing its path.
  CSPM_RETURN_IF_ERROR(
      MineAndPublish(sh, std::move(*stored.graph), args[1]));
  for (size_t i = 0; i < wal.deltas.size(); ++i) {
    const engine::UpdateMode mode =
        wal.modes[i] == store::WalDeltaMode::kFast ? engine::UpdateMode::kFast
                                                   : engine::UpdateMode::kExact;
    CSPM_RETURN_IF_ERROR(sh.session->ApplyUpdates(wal.deltas[i], mode,
                                                  nullptr));
  }
  auto handle_or = sh.session->Publish(sh.registry, args[1]);
  if (!handle_or.ok()) return handle_or.status();
  sh.current = std::move(handle_or).value();
  sh.session_handle = sh.current;
  if (wal.truncated) {
    // Checkpoint the salvaged state: re-Put the record (which compacts
    // the WAL) so the unreadable tail records are dropped for good —
    // otherwise later updates would append after them and be silently
    // lost at the next replay.
    store::StoredModel checkpoint;
    checkpoint.model = sh.current->model;
    checkpoint.dict = sh.current->dict;
    checkpoint.graph = *sh.current->graph;
    CSPM_RETURN_IF_ERROR(sh.store->Put(args[1], checkpoint));
    std::printf(
        "warning: WAL tail unreadable, %zu record(s) dropped — replayed "
        "the valid prefix and checkpointed it as the new snapshot\n",
        wal.dropped);
  }
  const auto& m = sh.current->model;
  std::printf(
      "replayed '%s': snapshot + %zu delta(s) -> %u vertices, %s\n",
      args[1].c_str(), wal.deltas.size(),
      sh.current->graph->num_vertices().value(),
      DlSummary(m.astars.size(), m.stats.initial_dl_bits,
                m.stats.final_dl_bits)
          .c_str());
  return Status::OK();
}

Status CmdSave(Shell& sh, const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("usage: save <name>");
  CSPM_RETURN_IF_ERROR(RequireStore(sh));
  CSPM_RETURN_IF_ERROR(RequireCurrent(sh));
  store::StoredModel stored;
  stored.model = sh.current->model;
  stored.dict = sh.current->dict;
  if (sh.current->graph != nullptr) stored.graph = *sh.current->graph;
  CSPM_RETURN_IF_ERROR(sh.store->Put(args[1], stored));
  // The store just rewrote this model's plan section; drop any cached
  // mapping so the next load maps the fresh bytes (in-flight handles keep
  // the old mapping alive on their own).
  sh.registry.InvalidateCachedPlan(sh.store->path(), args[1]);
  if (sh.session.has_value() && sh.current == sh.session_handle) {
    // The live session's own model is now persisted under this name:
    // later updates append their deltas to its WAL. (Handle identity, not
    // name equality — saving a loaded snapshot must not re-bind the WAL.)
    sh.session_name = args[1];
    sh.current_name = args[1];
  }
  std::printf("saved '%s' (%zu a-stars) to %s\n", args[1].c_str(),
              stored.model.astars.size(), sh.store->path().c_str());
  return Status::OK();
}

Status CmdLoad(Shell& sh, const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("usage: load <name>");
  CSPM_RETURN_IF_ERROR(RequireStore(sh));
  CSPM_RETURN_IF_ERROR(sh.registry.LoadModel(sh.store->path(), args[1]));
  sh.current = sh.registry.Get(args[1]);
  sh.current_name = args[1];
  std::printf("loaded '%s': %zu a-stars, %zu attribute values%s%s\n",
              args[1].c_str(), sh.current->model.astars.size(),
              sh.current->dict.size(),
              sh.current->graph != nullptr ? ", graph snapshot" : "",
              sh.current->plan != nullptr && sh.current->plan->is_view()
                  ? ", mmap plan"
                  : "");
  return Status::OK();
}

Status CmdLs(Shell& sh, const std::vector<std::string>&) {
  CSPM_RETURN_IF_ERROR(RequireStore(sh));
  const auto infos = sh.store->List();
  if (infos.empty()) {
    std::printf("(store is empty)\n");
    return Status::OK();
  }
  std::printf("%-24s %10s %8s %6s %4s %10s\n", "name", "bytes", "a-stars",
              "graph", "wal", "plan");
  for (const auto& info : infos) {
    std::printf("%-24s %10llu %8llu %6s %4llu %10s\n", info.name.c_str(),
                static_cast<unsigned long long>(info.bytes),
                static_cast<unsigned long long>(info.num_astars),
                info.has_graph ? "yes" : "no",
                static_cast<unsigned long long>(info.wal_records),
                info.plan_bytes > 0
                    ? StrFormat("%llu", static_cast<unsigned long long>(
                                            info.plan_bytes))
                          .c_str()
                    : "v2");
  }
  return Status::OK();
}

Status CmdRm(Shell& sh, const std::vector<std::string>& args) {
  if (args.size() != 2) return Status::InvalidArgument("usage: rm <name>");
  CSPM_RETURN_IF_ERROR(RequireStore(sh));
  CSPM_RETURN_IF_ERROR(sh.store->Delete(args[1]));
  sh.registry.InvalidateCachedPlan(sh.store->path(), args[1]);
  sh.registry.Remove(args[1]);
  std::printf("removed '%s'\n", args[1].c_str());
  return Status::OK();
}

/// Prints the top-k normalized scores of one vertex.
void PrintTopScores(const Shell& sh, graph::VertexId v,
                    const engine::AttributeScores& scores, size_t k) {
  const auto& normalized = scores.normalized;
  std::vector<size_t> order(normalized.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return normalized[a] != normalized[b] ? normalized[a] > normalized[b]
                                          : a < b;
  });
  std::printf("top-%zu scores for vertex %u of '%s':\n",
              std::min(k, order.size()), v.value(), sh.current_name.c_str());
  for (size_t i = 0; i < order.size() && i < k; ++i) {
    std::printf("  %-20s %.6f\n", sh.current->dict.Name(
                                      static_cast<graph::AttrId>(order[i]))
                                      .c_str(),
                normalized[order[i]]);
  }
}

StatusOr<engine::ServingEngine> MakeEngine(const Shell& sh) {
  engine::ServingOptions options;
  options.num_threads = sh.threads;
  return sh.current->Serve(options);
}

Status CmdScore(Shell& sh, const std::vector<std::string>& args) {
  std::vector<graph::VertexId> vertices;
  uint32_t k = 5;
  for (size_t i = 1; i < args.size(); ++i) {
    if (StartsWith(args[i], "k=")) {
      if (!ParseUint32(args[i].substr(2), &k)) {
        return Status::InvalidArgument("bad top-k '" + args[i] + "'");
      }
    } else {
      uint32_t v = 0;
      if (!ParseUint32(args[i], &v)) {
        return Status::InvalidArgument("bad vertex id '" + args[i] + "'");
      }
      vertices.push_back(graph::VertexId(v));
    }
  }
  if (vertices.empty() || k == 0) {
    return Status::InvalidArgument("usage: score <v1> [v2 ...] [k=N]");
  }
  CSPM_RETURN_IF_ERROR(RequireCurrent(sh));
  CSPM_ASSIGN_OR_RETURN(engine::ServingEngine engine, MakeEngine(sh));
  CSPM_ASSIGN_OR_RETURN(std::vector<engine::AttributeScores> batch,
                        engine.ScoreBatch(vertices));
  for (size_t i = 0; i < vertices.size(); ++i) {
    PrintTopScores(sh, vertices[i], batch[i], k);
  }
  return Status::OK();
}

Status CmdScoreAll(Shell& sh, const std::vector<std::string>& args) {
  if (args.size() > 2) return Status::InvalidArgument("usage: score-all [k]");
  CSPM_RETURN_IF_ERROR(RequireCurrent(sh));
  uint32_t k = 5;
  if (args.size() > 1 && !ParseUint32(args[1], &k)) {
    return Status::InvalidArgument("bad top-k '" + args[1] + "'");
  }
  CSPM_ASSIGN_OR_RETURN(engine::ServingEngine engine, MakeEngine(sh));
  WallTimer timer;
  const std::vector<engine::AttributeScores> batch = engine.ScoreAll();
  const double seconds = timer.ElapsedSeconds();

  // Global best (vertex, attribute) pairs; ties break on (vertex, attr)
  // so output is deterministic at any thread count.
  struct Best {
    double score;
    graph::VertexId v;
    graph::AttrId a;
  };
  std::vector<Best> best;
  for (graph::VertexId v(0); v.index() < batch.size(); ++v) {
    const auto& normalized = batch[v.index()].normalized;
    for (size_t a = 0; a < normalized.size(); ++a) {
      if (normalized[a] <= 0.0) continue;
      best.push_back(
          {normalized[a], v, graph::AttrId(static_cast<uint32_t>(a))});
    }
  }
  const size_t keep = std::min<size_t>(k, best.size());
  std::partial_sort(best.begin(), best.begin() + keep, best.end(),
                    [](const Best& x, const Best& y) {
                      if (x.score != y.score) return x.score > y.score;
                      if (x.v != y.v) return x.v < y.v;
                      return x.a < y.a;
                    });
  std::printf("scored %zu vertices in %.3fs (%.0f vertices/s, %zu threads)\n",
              batch.size(), seconds,
              seconds > 0 ? static_cast<double>(batch.size()) / seconds : 0.0,
              engine.num_threads());
  for (size_t i = 0; i < keep; ++i) {
    std::printf("  v%-8u %-20s %.6f\n", best[i].v.value(),
                sh.current->dict.Name(best[i].a).c_str(), best[i].score);
  }
  return Status::OK();
}

Status CmdStats(Shell& sh, const std::vector<std::string>& args) {
  if (args.size() > 2 || (args.size() == 2 && args[1] != "--json")) {
    return Status::InvalidArgument("usage: stats [--json]");
  }
  CSPM_RETURN_IF_ERROR(RequireCurrent(sh));
  const core::MiningStats& s = sh.current->model.stats;
  if (args.size() == 2) {
    // The mdl.* values are read back from the obs registry, so `stats
    // --json` and `metrics --json` report the same gauges.
    std::string out = StrFormat(
        "{\"model\":\"%s\",\"astars\":%zu,\"initial_dl_bits\":%.12g,"
        "\"final_dl_bits\":%.12g,\"compression_ratio\":%.12g,"
        "\"iterations\":%llu,\"gain_computations\":%llu,"
        "\"initial_leafsets\":%llu,\"final_leafsets\":%llu,"
        "\"initial_lines\":%llu,\"final_lines\":%llu,"
        "\"runtime_seconds\":%.12g,",
        sh.current_name.c_str(), sh.current->model.astars.size(),
        s.initial_dl_bits, s.final_dl_bits, s.CompressionRatio(),
        static_cast<unsigned long long>(s.iterations),
        static_cast<unsigned long long>(s.total_gain_computations),
        static_cast<unsigned long long>(s.initial_leafsets),
        static_cast<unsigned long long>(s.final_leafsets),
        static_cast<unsigned long long>(s.initial_lines),
        static_cast<unsigned long long>(s.final_lines), s.runtime_seconds);
    // Resident plan footprint of the current model: bytes the plan's six
    // slabs occupy, and whether they are an mmap view of the store file
    // (zero-copy) or a heap compile.
    const auto& plan = sh.current->plan;
    out += StrFormat(
        "\"plan_resident_bytes\":%zu,\"plan_mmap\":%s,",
        plan != nullptr ? plan->ApproxBytes() : size_t{0},
        plan != nullptr && plan->is_view() ? "true" : "false");
    out += StrFormat(
        "\"obs\":{\"mdl.current_dl_bits\":%.12g,"
        "\"mdl.last_update_dl_delta_bits\":%.12g,\"registry.models\":%.12g,"
        "\"registry.plan_cache.resident_bytes\":%.12g}}",
        obs::GetGauge("mdl.current_dl_bits")->Value(),
        obs::GetGauge("mdl.last_update_dl_delta_bits")->Value(),
        obs::GetGauge("registry.models")->Value(),
        obs::GetGauge("registry.plan_cache.resident_bytes")->Value());
    std::printf("%s\n", out.c_str());
    return Status::OK();
  }
  std::printf("model '%s': %s\n", sh.current_name.c_str(),
              DlSummary(sh.current->model.astars.size(), s.initial_dl_bits,
                        s.final_dl_bits)
                  .c_str());
  std::printf("  ratio       %.4f\n", s.CompressionRatio());
  std::printf("  iterations  %llu (%llu gain computations)\n",
              static_cast<unsigned long long>(s.iterations),
              static_cast<unsigned long long>(s.total_gain_computations));
  std::printf("  leafsets    %llu -> %llu, lines %llu -> %llu\n",
              static_cast<unsigned long long>(s.initial_leafsets),
              static_cast<unsigned long long>(s.final_leafsets),
              static_cast<unsigned long long>(s.initial_lines),
              static_cast<unsigned long long>(s.final_lines));
  std::printf("  runtime     %.3fs\n", s.runtime_seconds);
  if (sh.current->plan != nullptr) {
    std::printf("  plan        %zu bytes resident (%s)\n",
                sh.current->plan->ApproxBytes(),
                sh.current->plan->is_view() ? "mmap view" : "compiled");
  }
  return Status::OK();
}

Status CmdMetrics(Shell&, const std::vector<std::string>& args) {
  if (args.size() > 2 || (args.size() == 2 && args[1] != "--json")) {
    return Status::InvalidArgument("usage: metrics [--json]");
  }
  if (args.size() == 2) {
    std::printf("%s\n", obs::MetricsRegistry::Global().SnapshotJson().c_str());
    return Status::OK();
  }
  const obs::MetricsRegistry::Snapshot snap =
      obs::MetricsRegistry::Global().Snap();
  if (snap.counters.empty() && snap.gauges.empty() &&
      snap.histograms.empty()) {
    std::printf("(no metrics recorded yet)\n");
    return Status::OK();
  }
  if (!snap.counters.empty()) {
    std::printf("counters:\n");
    for (const auto& [name, value] : snap.counters) {
      std::printf("  %-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  if (!snap.gauges.empty()) {
    std::printf("gauges:\n");
    for (const auto& [name, value] : snap.gauges) {
      std::printf("  %-36s %.4f\n", name.c_str(), value);
    }
  }
  if (!snap.histograms.empty()) {
    std::printf("histograms:%27s %8s %10s %10s %10s\n", "", "count", "p50",
                "p99", "max");
    for (const auto& [name, h] : snap.histograms) {
      std::printf("  %-36s %8llu %10s %10s %10s\n", name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  FormatNanos(h.p50_ns).c_str(), FormatNanos(h.p99_ns).c_str(),
                  FormatNanos(static_cast<double>(h.max_ns)).c_str());
    }
  }
  return Status::OK();
}

Status CmdFsck(Shell&, const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return Status::InvalidArgument("usage: fsck <store.cspm>");
  }
  // Opens its own handle: fsck must see the committed image, not any
  // session state, and must work with no store open in the shell.
  CSPM_ASSIGN_OR_RETURN(store::ModelStore store,
                        store::ModelStore::Open(args[1]));
  CSPM_RETURN_IF_ERROR(store.Fsck());
  uint64_t wal_records = 0;
  for (const auto& info : store.List()) wal_records += info.wal_records;
  std::printf("%s: ok (%zu models, %llu pending WAL records)\n",
              args[1].c_str(), store.size(),
              static_cast<unsigned long long>(wal_records));
  return Status::OK();
}

/// Dispatches one command line; returns false to exit the loop.
bool Dispatch(Shell& sh, const std::string& line, Status* status) {
  *status = Status::OK();
  const auto args = SplitString(StripWhitespace(line), ' ');
  if (args.empty()) return true;
  const std::string& cmd = args[0];
  if (cmd == "exit" || cmd == "quit" || cmd == ".exit") return false;
  WallTimer cmd_timer;
  if (cmd == "help") {
    PrintHelp();
  } else if (cmd == "open") {
    *status = CmdOpen(sh, args);
  } else if (cmd == "mine") {
    *status = CmdMine(sh, args);
  } else if (cmd == "save") {
    *status = CmdSave(sh, args);
  } else if (cmd == "load") {
    *status = CmdLoad(sh, args);
  } else if (cmd == "ls") {
    *status = CmdLs(sh, args);
  } else if (cmd == "rm") {
    *status = CmdRm(sh, args);
  } else if (cmd == "score") {
    *status = CmdScore(sh, args);
  } else if (cmd == "score-all") {
    *status = CmdScoreAll(sh, args);
  } else if (cmd == "update") {
    *status = CmdUpdate(sh, args);
  } else if (cmd == "replay") {
    *status = CmdReplay(sh, args);
  } else if (cmd == "stats") {
    *status = CmdStats(sh, args);
  } else if (cmd == "metrics") {
    *status = CmdMetrics(sh, args);
  } else if (cmd == "fsck") {
    *status = CmdFsck(sh, args);
  } else {
    *status =
        Status::InvalidArgument("unknown command '" + cmd + "' (try: help)");
    return true;  // no shell.cmd.* histogram for typos
  }
  // Every recognised command feeds a shell.cmd.<name> histogram, so the
  // `metrics` command reports the shell's own latency profile; interactive
  // sessions also get an inline timing line.
  obs::GetHistogram("shell.cmd." + cmd)->Record(cmd_timer.ElapsedNanos());
  if (sh.interactive) {
    std::printf("(%s: %.3fs)\n", cmd.c_str(), cmd_timer.ElapsedSeconds());
  }
  return true;
}

int Run(int argc, char** argv) {
  Shell sh;
  sh.interactive = ::isatty(::fileno(stdin)) != 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string threads_value;
    switch (MatchFlagWithValue(argc, argv, &i, "--threads", &threads_value)) {
      case 0:
        positional.push_back(argv[i]);
        break;
      case -1:
        std::fprintf(stderr, "--threads needs a value\n");
        return 2;
      default:
        if (!ParseUint32(threads_value, &sh.threads)) {
          std::fprintf(stderr,
                       "--threads needs a non-negative integer, got '%s'\n",
                       threads_value.c_str());
          return 2;
        }
    }
  }
  // One-shot verification mode: `cspm_shell fsck <file>` audits the store
  // and exits (0 healthy, 1 corrupt) without entering the REPL.
  if (!positional.empty() && positional[0] == "fsck") {
    if (positional.size() != 2) {
      std::fprintf(stderr, "usage: cspm_shell fsck <store.cspm>\n");
      return 2;
    }
    Status st = CmdFsck(sh, {"fsck", positional[1]});
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }
  if (positional.size() > 1) {
    std::fprintf(stderr, "usage: cspm_shell [--threads N] [store.cspm]\n");
    return 2;
  }
  if (positional.size() == 1) {
    Status st = CmdOpen(sh, {"open", positional[0]});
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (sh.interactive) {
    std::printf("cspm_shell — 'help' lists commands\n");
  }

  std::ofstream history(kHistoryFile, std::ios::app);
  std::string line;
  while (true) {
    if (sh.interactive) {
      std::printf("cspm> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (!StripWhitespace(line).empty() && history) history << line << "\n";
    Status status;
    const bool keep_going = Dispatch(sh, line, &status);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      // Batch mode (piped commands) must not plough on after a failure.
      if (!sh.interactive) return 1;
    }
    if (!keep_going) break;
  }
  return 0;
}

}  // namespace
}  // namespace cspm::shell

int main(int argc, char** argv) { return cspm::shell::Run(argc, argv); }
