// Telecom alarm triage (the paper's Section VI-D): simulate an alarm
// stream with planted causal rules, mine a-stars from the windowed device
// graph, extract ranked cause->derivative rules, and measure how many of
// the planted rules surface near the top.
//
// A second pass batch-scores every (device, window) vertex through the
// serving engine and surfaces the windows with the strongest suspected
// hidden alarms (alarm/triage.h).
//
//   $ ./examples/alarm_triage
#include <cstdio>
#include <set>

#include "alarm/acor.h"
#include "alarm/simulator.h"
#include "alarm/triage.h"
#include "alarm/window_graph.h"
#include "engine/session.h"

int main() {
  using namespace cspm;
  using namespace cspm::alarm;

  Rng rng(5);
  RuleLibrary lib = RuleLibrary::Generate(/*num_rules=*/8,
                                          /*min_derivatives=*/5,
                                          /*max_derivatives=*/9,
                                          /*num_types=*/150, &rng);
  SimulationOptions options;
  options.num_devices = 150;
  options.num_alarm_types = 150;
  options.duration_minutes = 3 * 24 * 60;
  options.cause_incidents = 4000;
  options.seed = 5;
  auto data_or = SimulateAlarms(options, lib);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  std::printf("simulated %zu alarms on %u devices (%zu planted pair "
              "rules)\n",
              data_or->events.size(), options.num_devices,
              lib.PairRules().size());

  auto wg_or = BuildWindowGraph(*data_or, /*window_minutes=*/5.0);
  if (!wg_or.ok()) {
    std::fprintf(stderr, "%s\n", wg_or.status().ToString().c_str());
    return 1;
  }
  engine::MiningOptions mopts;
  mopts.record_iteration_stats = false;
  auto model_or = engine::MineModel(*wg_or, mopts);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  auto ranked = SplitAStarsToPairs(*model_or, wg_or->dict());

  std::printf("top extracted alarm rules (T<cause> -> T<derivative>):\n");
  std::set<std::pair<AlarmType, AlarmType>> valid;
  for (const auto& r : lib.PairRules()) {
    valid.insert({r.cause, r.derivative});
  }
  for (size_t i = 0; i < std::min<size_t>(ranked.size(), 12); ++i) {
    const auto& p = ranked[i];
    std::printf("  %2zu. T%u -> T%u  score=%.3f %s\n", i + 1, p.cause,
                p.derivative, p.score,
                valid.count({p.cause, p.derivative}) ? "[planted rule]" : "");
  }
  auto coverage = CoverageAtK(ranked, lib.PairRules(),
                              {lib.PairRules().size() * 2});
  std::printf("coverage of planted rules at top-%zu: %.1f%%\n",
              lib.PairRules().size() * 2, 100.0 * coverage[0]);

  // Live-window triage: one serving batch over every window vertex.
  TriageOptions topts;
  topts.top_k = 3;
  topts.min_score = 0.5;
  auto triage_or = TriageWindows(*wg_or, *model_or, topts);
  if (!triage_or.ok()) {
    std::fprintf(stderr, "%s\n", triage_or.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "triage: %zu of %u windows have suspected hidden alarms "
      "(score >= %.2f); first 5:\n",
      triage_or->size(), wg_or->num_vertices().value(), topts.min_score);
  for (size_t i = 0; i < triage_or->size() && i < 5; ++i) {
    const auto& wt = (*triage_or)[i];
    std::printf("  window v%u:", wt.window.value());
    for (const auto& s : wt.suspected) {
      std::printf("  T%u (%.2f)", s.type, s.score);
    }
    std::printf("\n");
  }
  return 0;
}
