// Node attribute completion (the paper's Section VI-C): hide 30% of the
// user profiles in a homophilous social graph, then compare NeighAggre
// with and without the CSPM scoring fusion.
//
//   $ ./examples/profile_completion
#include <cstdio>

#include "completion/fusion.h"
#include "completion/models.h"
#include "completion/task.h"
#include "datasets/synthetic.h"
#include "engine/session.h"

int main() {
  using namespace cspm;
  using namespace cspm::completion;

  auto graph_or = datasets::MakeCoraLike(/*seed=*/11);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  auto data_or = MakeCompletionTask(*graph_or, /*missing_fraction=*/0.3,
                                    /*seed=*/17);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const CompletionDataset& data = *data_or;
  std::printf("citation-style graph: %u nodes, %zu test nodes with hidden "
              "attributes\n",
              data.masked_graph.num_vertices(), data.test_nodes.size());

  // Mine a-stars on the attribute-missing graph (what a deployment sees).
  engine::MiningOptions mopts;
  mopts.record_iteration_stats = false;
  auto cspm_model = engine::MineModel(data.masked_graph, mopts);
  if (!cspm_model.ok()) {
    std::fprintf(stderr, "%s\n", cspm_model.status().ToString().c_str());
    return 1;
  }

  auto model = MakeNeighAggre();
  nn::Matrix base_scores = model->PredictScores(data);
  nn::Matrix fused_scores = FuseWithCspm(base_scores, data, *cspm_model);

  const std::vector<size_t> ks = {10, 20, 50};
  auto base = EvaluateScores(data, base_scores, ks);
  auto fused = EvaluateScores(data, fused_scores, ks);
  std::printf("%-18s %8s %8s %8s\n", "method", "Rec@10", "Rec@20", "Rec@50");
  std::printf("%-18s %8.4f %8.4f %8.4f\n", "NeighAggre", base.recall[0],
              base.recall[1], base.recall[2]);
  std::printf("%-18s %8.4f %8.4f %8.4f\n", "CSPM+NeighAggre",
              fused.recall[0], fused.recall[1], fused.recall[2]);
  return 0;
}
