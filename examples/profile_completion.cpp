// Node attribute completion (the paper's Section VI-C): hide 30% of the
// user profiles in a homophilous social graph, then compare NeighAggre
// with and without the CSPM scoring fusion.
//
// Demonstrates mine-once/serve-many through the model store: the first
// run mines and persists the model to a .cspm store file; later runs load
// it back in milliseconds instead of re-mining.
//
//   $ ./examples/profile_completion [--threads N] [model.cspm]
//
// --threads N shards the CSPM batch scoring of the test nodes across the
// serving engine's thread pool (0 = one per hardware core; scores are
// identical at any thread count).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "completion/fusion.h"
#include "completion/models.h"
#include "completion/task.h"
#include "datasets/synthetic.h"
#include "engine/session.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cspm;
  using namespace cspm::completion;

  uint32_t threads = 1;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string threads_value;
    switch (MatchFlagWithValue(argc, argv, &i, "--threads", &threads_value)) {
      case 0:
        positional.push_back(argv[i]);
        break;
      case -1:
        std::fprintf(stderr, "--threads needs a value\n");
        return 2;
      default:
        if (!ParseUint32(threads_value, &threads)) {
          std::fprintf(stderr,
                       "--threads needs a non-negative integer, got '%s'\n",
                       threads_value.c_str());
          return 2;
        }
    }
  }
  if (positional.size() > 1) {
    std::fprintf(stderr,
                 "usage: profile_completion [--threads N] [model.cspm]\n");
    return 2;
  }
  const std::string store_path =
      !positional.empty() ? positional[0] : "profile_completion.cspm";

  auto graph_or = datasets::MakeCoraLike(/*seed=*/11);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  auto data_or = MakeCompletionTask(*graph_or, /*missing_fraction=*/0.3,
                                    /*seed=*/17);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const CompletionDataset& data = *data_or;
  std::printf("citation-style graph: %u nodes, %zu test nodes with hidden "
              "attributes\n",
              data.masked_graph.num_vertices().value(), data.test_nodes.size());

  // Mine a-stars on the attribute-missing graph (what a deployment sees) —
  // or, on a warm start, load the persisted model from the store.
  engine::MiningOptions mopts;
  mopts.record_iteration_stats = false;
  auto session_or = engine::MiningSession::Create(data.masked_graph, mopts);
  if (!session_or.ok()) {
    std::fprintf(stderr, "%s\n", session_or.status().ToString().c_str());
    return 1;
  }
  engine::MiningSession& session = *session_or;
  const bool store_exists = std::ifstream(store_path).good();
  WallTimer timer;
  bool loaded = false;
  if (store_exists) {
    if (Status st = session.LoadModel(store_path); st.ok()) {
      loaded = true;
      std::printf("loaded model from %s in %.1fms (mine-once/serve-many)\n",
                  store_path.c_str(), timer.ElapsedMillis());
    } else {
      std::fprintf(stderr, "warning: could not load %s (%s); re-mining\n",
                   store_path.c_str(), st.ToString().c_str());
      timer.Reset();
    }
  }
  if (!loaded) {
    if (Status st = session.Mine(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("mined model in %.2fs\n", timer.ElapsedSeconds());
    if (Status st = session.SaveModel(store_path); !st.ok()) {
      std::fprintf(stderr, "warning: could not persist model: %s\n",
                   st.ToString().c_str());
    } else {
      std::printf("persisted model to %s; the next run loads it instead of "
                  "mining\n",
                  store_path.c_str());
    }
  }

  auto model = MakeNeighAggre();
  nn::Matrix base_scores = model->PredictScores(data);
  // One serving batch over all test nodes, sharded across --threads; the
  // engine reuses the plan the session compiled at Mine/LoadModel time.
  engine::ServingOptions serving;
  serving.num_threads = threads;
  auto engine_or = session.Serve(serving);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  WallTimer fuse_timer;
  nn::Matrix fused_scores = FuseWithCspm(base_scores, data, *engine_or);
  std::printf("batch-scored %zu test nodes in %.1fms (--threads %u)\n",
              data.test_nodes.size(), fuse_timer.ElapsedMillis(), threads);

  const std::vector<size_t> ks = {10, 20, 50};
  auto base = EvaluateScores(data, base_scores, ks);
  auto fused = EvaluateScores(data, fused_scores, ks);
  std::printf("%-18s %8s %8s %8s\n", "method", "Rec@10", "Rec@20", "Rec@50");
  std::printf("%-18s %8.4f %8.4f %8.4f\n", "NeighAggre", base.recall[0],
              base.recall[1], base.recall[2]);
  std::printf("%-18s %8.4f %8.4f %8.4f\n", "CSPM+NeighAggre",
              fused.recall[0], fused.recall[1], fused.recall[2]);
  return 0;
}
