// Flight-network trend analysis (the paper's USFlight scenario): mine
// a-stars over airport traffic-trend attributes and look for the paper's
// ({NbDepart-} -> {NbDepart+, DelayArriv-}) correlation, then save/load
// the graph through the text format.
//
//   $ ./examples/flight_delays
#include <algorithm>
#include <cstdio>

#include "datasets/synthetic.h"
#include "engine/session.h"
#include "graph/io.h"
#include "graph/stats.h"

int main() {
  using namespace cspm;

  auto graph_or = datasets::MakeUsflightLike(/*seed=*/3);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const graph::AttributedGraph& g = *graph_or;
  std::printf("flight network: %s\n",
              graph::StatsToString(graph::ComputeStats(g)).c_str());

  // Round-trip through the on-disk format (shows the I/O API).
  const std::string path = "/tmp/usflight_like.graph";
  if (auto st = graph::SaveToFile(g, path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto reloaded = graph::LoadFromFile(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "%s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("saved and reloaded %u airports from %s\n",
              reloaded->num_vertices().value(), path.c_str());

  engine::MiningOptions options;
  options.record_iteration_stats = false;
  auto model_or = engine::MineModel(*reloaded, options);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const engine::CspmModel& model = *model_or;

  const graph::AttrId hub_trend = reloaded->dict().Find("NbDepart-");
  std::printf("patterns rooted at NbDepart- (the paper's USFlight "
              "example):\n");
  int shown = 0;
  for (const auto& s : model.astars) {
    if (s.frequency < 3 || s.leaf_values.size() < 2) continue;
    if (std::find(s.core_values.begin(), s.core_values.end(), hub_trend) ==
        s.core_values.end()) {
      continue;
    }
    std::printf("  %s\n", s.ToString(reloaded->dict()).c_str());
    if (++shown >= 5) break;
  }
  if (shown == 0) {
    std::printf("  (no merged pattern rooted there; inspect the full "
                "model)\n");
  }
  return 0;
}
