// Social-network pattern analysis (the paper's Pokec scenario): mine
// music-taste a-stars from a friendship network and interpret them.
//
//   $ ./examples/social_music
#include <algorithm>
#include <cstdio>

#include "datasets/synthetic.h"
#include "engine/session.h"
#include "graph/stats.h"

int main() {
  using namespace cspm;

  auto graph_or = datasets::MakePokecLike(/*seed=*/7, /*num_vertices=*/4000);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const graph::AttributedGraph& g = *graph_or;
  std::printf("friendship network: %s\n",
              graph::StatsToString(graph::ComputeStats(g)).c_str());

  engine::MiningOptions options;
  options.record_iteration_stats = false;
  auto model_or = engine::MineModel(g, options);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const engine::CspmModel& model = *model_or;
  std::printf("mined %zu a-stars in %.2fs; DL %.0f -> %.0f bits\n",
              model.astars.size(), model.stats.runtime_seconds,
              model.stats.initial_dl_bits, model.stats.final_dl_bits);

  // Patterns rooted at the planted genres mirror Fig. 6(c):
  // ({rap} -> {rock, metal, pop, sladaky}) and ({disko} -> {oldies, ...}).
  for (const char* genre : {"rap", "disko"}) {
    graph::AttrId id = g.dict().Find(genre);
    if (id == graph::AttributeDictionary::kNotFound) continue;
    std::printf("patterns with core '%s':\n", genre);
    int shown = 0;
    for (const auto& s : model.astars) {
      if (s.leaf_values.size() < 2 || s.frequency < 3) continue;
      if (std::find(s.core_values.begin(), s.core_values.end(), id) ==
          s.core_values.end()) {
        continue;
      }
      std::printf("  %s\n", s.ToString(g.dict()).c_str());
      if (++shown >= 3) break;
    }
  }
  return 0;
}
