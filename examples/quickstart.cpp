// Quickstart: build a small attributed graph, run CSPM, print the
// discovered a-star patterns.
//
//   $ ./examples/quickstart
//
// The graph plants one correlation: vertices with "smoker" tend to have
// neighbours with "smoker" and "coffee" — the classic social-influence
// example from the paper's introduction.
#include <cstdio>

#include "engine/session.h"
#include "graph/generators.h"
#include "graph/stats.h"

int main() {
  using namespace cspm;

  // 1. Generate a graph with one planted a-star rule plus noise.
  graph::PlantedGraphOptions options;
  options.num_vertices = 400;
  options.noise_vocabulary = 20;
  options.seed = 42;
  std::vector<graph::PlantedAStar> rules = {
      {{"smoker"}, {"smoker", "coffee"}, 0.9},
  };
  auto graph_or = graph::PlantedAStarGraph(options, rules);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph_or.status().ToString().c_str());
    return 1;
  }
  const graph::AttributedGraph& g = *graph_or;
  std::printf("graph: %s\n",
              graph::StatsToString(graph::ComputeStats(g)).c_str());

  // 2. Mine with CSPM (parameter-free; defaults use the Partial search).
  auto model_or = engine::MineModel(g);
  if (!model_or.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  const engine::CspmModel& model = *model_or;

  // 3. Report.
  std::printf("mined %zu a-stars in %.3fs (%llu merges)\n",
              model.astars.size(), model.stats.runtime_seconds,
              static_cast<unsigned long long>(model.stats.iterations));
  std::printf("description length: %.1f -> %.1f bits (ratio %.3f)\n",
              model.stats.initial_dl_bits, model.stats.final_dl_bits,
              model.stats.CompressionRatio());
  std::printf("top patterns (merged leafsets only):\n");
  int shown = 0;
  for (const auto& s : model.PatternsWithMinLeaves(2)) {
    std::printf("  %s\n", s.ToString(g.dict()).c_str());
    if (++shown >= 8) break;
  }
  return 0;
}
